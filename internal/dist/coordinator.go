package dist

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/dsn2015/vdbench/internal/harness"
	"github.com/dsn2015/vdbench/internal/telemetry"
	"github.com/dsn2015/vdbench/internal/workpool"
)

// CoordinatorOptions tunes coordination behaviour; the zero value is
// usable.
type CoordinatorOptions struct {
	// HeartbeatInterval is the cadence workers are told to beat at;
	// zero selects one second.
	HeartbeatInterval time.Duration
	// HeartbeatTimeout is how long a worker may stay silent before its
	// shards are reassigned; zero selects five intervals.
	HeartbeatTimeout time.Duration
	// MaxReassign bounds how many times one shard may be reassigned
	// after worker loss before its campaign fails; zero selects 3.
	MaxReassign int
	// MergeWorkers sizes the budget used to assemble reported shards
	// into the full cell grid; <= 0 selects GOMAXPROCS.
	MergeWorkers int
	// Registry receives the coordinator's metrics; nil selects a fresh
	// private registry.
	Registry *telemetry.Registry
}

func (o CoordinatorOptions) withDefaults() CoordinatorOptions {
	if o.HeartbeatInterval <= 0 {
		o.HeartbeatInterval = time.Second
	}
	if o.HeartbeatTimeout <= 0 {
		o.HeartbeatTimeout = 5 * o.HeartbeatInterval
	}
	if o.MaxReassign <= 0 {
		o.MaxReassign = 3
	}
	if o.Registry == nil {
		o.Registry = telemetry.NewRegistry()
	}
	return o
}

// coordMetrics bundles the coordinator's instruments, resolved once at
// construction.
type coordMetrics struct {
	workers          *telemetry.Gauge
	workersLost      *telemetry.Counter
	shardsPending    *telemetry.Gauge
	shardsAssigned   *telemetry.Gauge
	shardsCompleted  *telemetry.Counter
	shardsReassigned *telemetry.Counter
	campSubmitted    *telemetry.Counter
	campCompleted    *telemetry.Counter
	campFailed       *telemetry.Counter
	shardSeconds     *telemetry.Histogram
	oracle           *oracleObserver
}

func newCoordMetrics(reg *telemetry.Registry) coordMetrics {
	return coordMetrics{
		workers:          reg.Gauge("vd_dist_workers", "registered workers"),
		workersLost:      reg.Counter("vd_dist_workers_lost_total", "workers expired after missed heartbeats"),
		shardsPending:    reg.Gauge("vd_dist_shards_pending", "shards waiting for a worker"),
		shardsAssigned:   reg.Gauge("vd_dist_shards_assigned", "shards leased to workers"),
		shardsCompleted:  reg.Counter("vd_dist_shards_completed_total", "shards reported and accepted"),
		shardsReassigned: reg.Counter("vd_dist_shards_reassigned_total", "shards requeued after worker loss or execution failure"),
		campSubmitted:    reg.Counter("vd_dist_campaigns_submitted_total", "campaigns accepted"),
		campCompleted:    reg.Counter("vd_dist_campaigns_completed_total", "campaigns merged successfully"),
		campFailed:       reg.Counter("vd_dist_campaigns_failed_total", "campaigns that failed (policy abort, reassignment exhaustion, shutdown)"),
		shardSeconds:     reg.Histogram("vd_dist_shard_seconds", "shard turnaround from lease to accepted report", 0.01, 0.1, 0.5, 1, 5, 30, 120),
		oracle:           newOracleObserver(reg),
	}
}

// shardState tracks one shard through pending → assigned → done.
type shardState struct {
	camp  *campaignState
	index int // position in the campaign's shard list
	lo    int
	hi    int
	key   string

	state      string // "pending", "assigned", "done"
	worker     string
	lease      uint64 // increments on every assignment; reports must match
	reassigns  int
	assignedAt time.Time
}

// campaignState tracks one submitted campaign.
type campaignState struct {
	id     string
	spec   CampaignSpec
	nTools int
	nCases int

	shards     []*shardState
	shardByKey map[string]*shardState
	remaining  int

	// shardCells is indexed [shard][tool][case-lo] and filled by reports.
	shardCells [][][]harness.CellResult

	state    string // "running", "done", "failed"
	err      error
	campaign *harness.Campaign
	cells    [][]harness.CellResult // assembled full grid, set when done
	done     chan struct{}
}

// workerState tracks one registered worker.
type workerState struct {
	id       string
	beat     chan struct{} // capacity 1; heartbeats do a non-blocking send
	assigned map[string]*shardState
}

// Coordinator shards submitted campaigns over registered workers and
// merges the reported cells into Campaigns byte-identical to local runs.
// All methods are safe for concurrent use.
type Coordinator struct {
	opts    CoordinatorOptions
	metrics coordMetrics
	budget  *workpool.Budget

	// now is the injected clock (only ever the time.Now value outside
	// tests); keeping the call behind a field keeps the package inside
	// the detrand discipline while still observing real latency.
	now func() time.Time

	draining atomic.Bool

	mu           sync.Mutex
	closed       bool
	workers      map[string]*workerState
	campaigns    map[string]*campaignState
	pending      []*shardState // FIFO; reassigned shards go to the front
	nextWorker   uint64
	nextCampaign uint64

	done chan struct{} // closed by Close; stops worker watchdogs
}

// NewCoordinator returns a running coordinator. Close releases it.
func NewCoordinator(opts CoordinatorOptions) *Coordinator {
	opts = opts.withDefaults()
	return &Coordinator{
		opts:      opts,
		metrics:   newCoordMetrics(opts.Registry),
		budget:    workpool.New(opts.MergeWorkers),
		now:       time.Now,
		workers:   map[string]*workerState{},
		campaigns: map[string]*campaignState{},
		done:      make(chan struct{}),
	}
}

// Registry exposes the coordinator's metric registry (for /metrics).
func (c *Coordinator) Registry() *telemetry.Registry { return c.opts.Registry }

// HeartbeatInterval returns the cadence workers should beat at.
func (c *Coordinator) HeartbeatInterval() time.Duration { return c.opts.HeartbeatInterval }

// BeginDrain flips readiness off ahead of shutdown, so health-checking
// clients stop routing new campaigns here while in-flight work finishes.
// Idempotent.
func (c *Coordinator) BeginDrain() { c.draining.Store(true) }

// Ready reports whether the coordinator should receive new work: it is
// neither draining nor closed.
func (c *Coordinator) Ready() bool {
	if c.draining.Load() {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return !c.closed
}

// Close fails every running campaign with ErrClosed and stops the worker
// watchdogs. Further mutating calls return ErrClosed.
func (c *Coordinator) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	close(c.done)
	ids := make([]string, 0, len(c.campaigns))
	for id := range c.campaigns {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		camp := c.campaigns[id]
		if camp.state == "running" {
			c.failCampaignLocked(camp, ErrClosed)
		}
	}
	return nil
}

// Register admits a new worker and returns its ID. A watchdog goroutine
// expires the worker if it stops heartbeating; the goroutine exits on
// expiry or Close.
func (c *Coordinator) Register() (string, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return "", ErrClosed
	}
	c.nextWorker++
	w := &workerState{
		id:       fmt.Sprintf("w-%06d", c.nextWorker),
		beat:     make(chan struct{}, 1),
		assigned: map[string]*shardState{},
	}
	c.workers[w.id] = w
	c.metrics.workers.Set(int64(len(c.workers)))
	c.mu.Unlock()
	go c.watchWorker(w)
	return w.id, nil
}

// Heartbeat records a sign of life from the worker.
func (c *Coordinator) Heartbeat(id string) error {
	c.mu.Lock()
	w, ok := c.workers[id]
	closed := c.closed
	c.mu.Unlock()
	if closed {
		return ErrClosed
	}
	if !ok {
		return ErrUnknownWorker
	}
	select {
	case w.beat <- struct{}{}:
	default:
	}
	return nil
}

// watchWorker expires the worker when a full heartbeat timeout elapses
// without a beat. The wait is a context deadline, not a timer — the
// sanctioned clock primitive of the deterministic packages.
func (c *Coordinator) watchWorker(w *workerState) {
	for {
		wctx, cancel := context.WithTimeout(context.Background(), c.opts.HeartbeatTimeout)
		select {
		case <-w.beat:
			cancel()
		case <-c.done:
			cancel()
			return
		case <-wctx.Done():
			cancel()
			c.expireWorker(w.id)
			return
		}
	}
}

// expireWorker drops the worker and requeues its leased shards in
// deterministic (sorted key) order at the front of the queue.
func (c *Coordinator) expireWorker(id string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	w, ok := c.workers[id]
	if !ok {
		return
	}
	delete(c.workers, id)
	c.metrics.workers.Set(int64(len(c.workers)))
	c.metrics.workersLost.Inc()
	keys := make([]string, 0, len(w.assigned))
	for k := range w.assigned {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		c.requeueLocked(w.assigned[k])
	}
}

// requeueLocked returns an assigned shard to the front of the pending
// queue, or fails its campaign once the reassignment budget is spent.
func (c *Coordinator) requeueLocked(st *shardState) {
	if st.state != "assigned" || st.camp.state != "running" {
		return
	}
	c.metrics.shardsAssigned.Add(-1)
	st.worker = ""
	st.reassigns++
	if st.reassigns > c.opts.MaxReassign {
		st.state = "pending"
		c.failCampaignLocked(st.camp, fmt.Errorf("dist: campaign %s: shard %s lost %d workers, giving up",
			st.camp.id, st.key[:12], st.reassigns))
		return
	}
	st.state = "pending"
	c.pending = append([]*shardState{st}, c.pending...)
	c.metrics.shardsPending.Add(1)
	c.metrics.shardsReassigned.Inc()
}

// failCampaignLocked moves a running campaign to the failed state and
// drops its queued shards.
func (c *Coordinator) failCampaignLocked(camp *campaignState, err error) {
	if camp.state != "running" {
		return
	}
	camp.state = "failed"
	camp.err = err
	keep := c.pending[:0]
	for _, st := range c.pending {
		if st.camp == camp {
			c.metrics.shardsPending.Add(-1)
			continue
		}
		keep = append(keep, st)
	}
	c.pending = keep
	c.metrics.campFailed.Inc()
	close(camp.done)
}

// Submit validates and enqueues a campaign, returning its ID. Shards are
// derived deterministically from the spec and corpus size.
func (c *Coordinator) Submit(spec CampaignSpec) (string, error) {
	if err := spec.Validate(); err != nil {
		return "", err
	}
	tools, err := BuildSuite(spec.Suite)
	if err != nil {
		return "", err
	}
	corpus, err := corpusFor(spec.Workload)
	if err != nil {
		return "", err
	}
	c.metrics.oracle.observe()
	ranges := spec.shardRanges(len(corpus.Cases))

	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return "", ErrClosed
	}
	c.nextCampaign++
	camp := &campaignState{
		id:         fmt.Sprintf("c-%06d", c.nextCampaign),
		spec:       spec,
		nTools:     len(tools),
		nCases:     len(corpus.Cases),
		shardByKey: map[string]*shardState{},
		remaining:  len(ranges),
		shardCells: make([][][]harness.CellResult, len(ranges)),
		state:      "running",
		done:       make(chan struct{}),
	}
	for i, r := range ranges {
		st := &shardState{
			camp:  camp,
			index: i,
			lo:    r.lo,
			hi:    r.hi,
			key:   spec.ShardKey(r.lo, r.hi),
			state: "pending",
		}
		camp.shards = append(camp.shards, st)
		camp.shardByKey[st.key] = st
		c.pending = append(c.pending, st)
	}
	c.campaigns[camp.id] = camp
	c.metrics.shardsPending.Add(int64(len(ranges)))
	c.metrics.campSubmitted.Inc()
	return camp.id, nil
}

// ShardAssignment is the wire description of one leased shard.
type ShardAssignment struct {
	Campaign string       `json:"campaign"`
	Key      string       `json:"key"`
	Spec     CampaignSpec `json:"spec"`
	Lo       int          `json:"lo"`
	Hi       int          `json:"hi"`
	Lease    uint64       `json:"lease"`
}

// Pull leases the next pending shard to the worker. ok is false when no
// work is available — the worker should poll again after a beat.
func (c *Coordinator) Pull(workerID string) (ShardAssignment, bool, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ShardAssignment{}, false, ErrClosed
	}
	w, ok := c.workers[workerID]
	if !ok {
		return ShardAssignment{}, false, ErrUnknownWorker
	}
	for len(c.pending) > 0 {
		st := c.pending[0]
		c.pending = c.pending[1:]
		c.metrics.shardsPending.Add(-1)
		if st.camp.state != "running" {
			continue
		}
		st.state = "assigned"
		st.worker = workerID
		st.lease++
		st.assignedAt = c.now()
		w.assigned[st.key] = st
		c.metrics.shardsAssigned.Add(1)
		return ShardAssignment{
			Campaign: st.camp.id,
			Key:      st.key,
			Spec:     st.camp.spec,
			Lo:       st.lo,
			Hi:       st.hi,
			Lease:    st.lease,
		}, true, nil
	}
	return ShardAssignment{}, false, nil
}

// Report delivers one executed shard. A non-empty execErr means the
// worker could not execute the shard (corpus or suite construction
// failed there); the shard is requeued under the same bounded budget as
// worker loss. Reports under a stale lease return ErrStaleLease and are
// discarded — the winning execution is byte-identical by determinism.
func (c *Coordinator) Report(workerID, campaignID, key string, lease uint64, cells [][]harness.CellResult, execErr string) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	camp, ok := c.campaigns[campaignID]
	if !ok {
		c.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrUnknownCampaign, campaignID)
	}
	st, ok := camp.shardByKey[key]
	if !ok {
		c.mu.Unlock()
		return fmt.Errorf("dist: campaign %s has no shard %s", campaignID, key)
	}
	if st.state != "assigned" || st.worker != workerID || st.lease != lease {
		c.mu.Unlock()
		return ErrStaleLease
	}
	if w, ok := c.workers[workerID]; ok {
		delete(w.assigned, st.key)
	}
	if execErr != "" {
		c.requeueLocked(st)
		c.mu.Unlock()
		return nil
	}
	if err := c.checkShardShape(camp, st, cells); err != nil {
		// A malformed report is a worker defect, not a lease conflict:
		// requeue the shard and surface the shape error to the reporter.
		c.requeueLocked(st)
		c.mu.Unlock()
		return err
	}
	st.state = "done"
	camp.shardCells[st.index] = cells
	camp.remaining--
	finished := camp.remaining == 0 && camp.state == "running"
	c.metrics.shardsAssigned.Add(-1)
	c.metrics.shardsCompleted.Inc()
	c.metrics.shardSeconds.Observe(c.now().Sub(st.assignedAt).Seconds())
	c.mu.Unlock()

	if finished {
		c.finalize(camp)
	}
	return nil
}

// checkShardShape validates a reported grid against the shard geometry.
func (c *Coordinator) checkShardShape(camp *campaignState, st *shardState, cells [][]harness.CellResult) error {
	if len(cells) != camp.nTools {
		return fmt.Errorf("dist: shard %s report has %d tool rows, want %d", st.key[:12], len(cells), camp.nTools)
	}
	for t := range cells {
		if len(cells[t]) != st.hi-st.lo {
			return fmt.Errorf("dist: shard %s report row %d has %d cells, want %d", st.key[:12], t, len(cells[t]), st.hi-st.lo)
		}
	}
	return nil
}

// finalize assembles the full cell grid and runs the canonical merge.
// Runs outside the coordinator lock; shard grids are immutable once
// reported, and the publishing step re-checks the campaign is still
// running (Close may have failed it concurrently).
func (c *Coordinator) finalize(camp *campaignState) {
	campaign, cells, err := c.assemble(camp)

	c.mu.Lock()
	defer c.mu.Unlock()
	if camp.state != "running" {
		return
	}
	if err != nil {
		camp.state = "failed"
		camp.err = err
		c.metrics.campFailed.Inc()
	} else {
		camp.state = "done"
		camp.campaign = campaign
		camp.cells = cells
		c.metrics.campCompleted.Inc()
	}
	close(camp.done)
}

// assemble regenerates corpus and tools, stitches the shard grids into
// the full [tool][case] grid (fanning out over the merge budget) and
// applies the canonical MergeShards fold.
func (c *Coordinator) assemble(camp *campaignState) (*harness.Campaign, [][]harness.CellResult, error) {
	corpus, err := corpusFor(camp.spec.Workload)
	if err != nil {
		return nil, nil, err
	}
	c.metrics.oracle.observe()
	tools, err := BuildSuite(camp.spec.Suite)
	if err != nil {
		return nil, nil, err
	}
	full := make([][]harness.CellResult, camp.nTools)
	for t := range full {
		full[t] = make([]harness.CellResult, camp.nCases)
	}
	err = c.budget.ForEach(len(camp.shards), func(_, i int) error {
		st := camp.shards[i]
		grid := camp.shardCells[i]
		for t := range grid {
			copy(full[t][st.lo:st.hi], grid[t])
		}
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	campaign, err := harness.MergeShards(corpus, tools, full, camp.spec.Options.Degraded)
	if err != nil {
		return nil, nil, err
	}
	return campaign, full, nil
}

// CampaignStatus is the wire description of a campaign's progress.
type CampaignStatus struct {
	ID     string `json:"id"`
	State  string `json:"state"` // "running", "done", "failed"
	Error  string `json:"error,omitempty"`
	Shards int    `json:"shards"`
	Done   int    `json:"done"`
}

// Status reports a campaign's progress.
func (c *Coordinator) Status(id string) (CampaignStatus, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	camp, ok := c.campaigns[id]
	if !ok {
		return CampaignStatus{}, fmt.Errorf("%w: %s", ErrUnknownCampaign, id)
	}
	return c.statusLocked(camp), nil
}

func (c *Coordinator) statusLocked(camp *campaignState) CampaignStatus {
	s := CampaignStatus{
		ID:     camp.id,
		State:  camp.state,
		Shards: len(camp.shards),
		Done:   len(camp.shards) - camp.remaining,
	}
	if camp.err != nil {
		s.Error = camp.err.Error()
	}
	return s
}

// WaitStatus blocks until the campaign reaches a terminal state or ctx
// expires, returning the status either way.
func (c *Coordinator) WaitStatus(ctx context.Context, id string) (CampaignStatus, error) {
	c.mu.Lock()
	camp, ok := c.campaigns[id]
	c.mu.Unlock()
	if !ok {
		return CampaignStatus{}, fmt.Errorf("%w: %s", ErrUnknownCampaign, id)
	}
	select {
	case <-camp.done:
	case <-ctx.Done():
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.statusLocked(camp), nil
}

// Cells returns the assembled full [tool][case] grid of a completed
// campaign, for clients that run the canonical merge locally.
func (c *Coordinator) Cells(id string) ([][]harness.CellResult, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	camp, ok := c.campaigns[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownCampaign, id)
	}
	switch camp.state {
	case "done":
		return camp.cells, nil
	case "failed":
		return nil, camp.err
	default:
		return nil, ErrNotDone
	}
}

// Wait blocks until the campaign completes and returns its merged
// Campaign — the in-process equivalent of the client path.
func (c *Coordinator) Wait(ctx context.Context, id string) (*harness.Campaign, error) {
	c.mu.Lock()
	camp, ok := c.campaigns[id]
	c.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownCampaign, id)
	}
	select {
	case <-camp.done:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if camp.state == "failed" {
		return nil, camp.err
	}
	return camp.campaign, nil
}
