package dist

// Tool suites cross the wire by NAME, not by value: detector behaviour is
// code, and the only way to ship code in a stdlib-only system is to not
// ship it — both sides resolve the name through a process-local registry
// and rely on determinism for the instances to behave identically.
// "standard" (detectors.StandardSuite) is always registered; tests
// register fault-wrapped suites under their own names.

import (
	"fmt"
	"sort"
	"sync"

	"github.com/dsn2015/vdbench/internal/detectors"
)

var (
	suiteMu  sync.Mutex
	suiteReg = map[string]func() ([]detectors.Tool, error){}
)

func init() {
	if err := RegisterSuite("standard", detectors.StandardSuite); err != nil {
		panic(err)
	}
}

// RegisterSuite makes a named tool suite resolvable by BuildSuite in this
// process. The builder must be deterministic: every process that resolves
// the name must construct tools with identical behaviour, or the
// byte-identity guarantee is forfeit. Registering a name twice is an
// error — silently replacing a suite mid-campaign would be a determinism
// hazard.
func RegisterSuite(name string, build func() ([]detectors.Tool, error)) error {
	if name == "" {
		return fmt.Errorf("dist: empty suite name")
	}
	if build == nil {
		return fmt.Errorf("dist: nil suite builder for %q", name)
	}
	suiteMu.Lock()
	defer suiteMu.Unlock()
	if _, ok := suiteReg[name]; ok {
		return fmt.Errorf("dist: suite %q already registered", name)
	}
	suiteReg[name] = build
	return nil
}

// BuildSuite constructs a fresh instance of the named suite. Each call
// builds new tool instances — tools may carry per-campaign state (compile
// caches, fault injectors), so instances are never shared across
// campaigns.
func BuildSuite(name string) ([]detectors.Tool, error) {
	suiteMu.Lock()
	build, ok := suiteReg[name]
	suiteMu.Unlock()
	if !ok {
		return nil, fmt.Errorf("dist: unknown suite %q (registered: %v)", name, Suites())
	}
	tools, err := build()
	if err != nil {
		return nil, fmt.Errorf("dist: building suite %q: %w", name, err)
	}
	if len(tools) == 0 {
		return nil, fmt.Errorf("dist: suite %q built no tools", name)
	}
	return tools, nil
}

// Suites lists the registered suite names in sorted order.
func Suites() []string {
	suiteMu.Lock()
	defer suiteMu.Unlock()
	names := make([]string, 0, len(suiteReg))
	for name := range suiteReg {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
