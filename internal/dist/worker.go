package dist

import (
	"context"
	"net/http"
	"sync/atomic"
	"time"

	"github.com/dsn2015/vdbench/internal/harness"
	"github.com/dsn2015/vdbench/internal/telemetry"
)

// WorkerOptions configures one worker process.
type WorkerOptions struct {
	// Join is the coordinator base URL, e.g. "http://127.0.0.1:8080".
	Join string
	// PollInterval is the idle wait between pulls that found no work;
	// zero selects the coordinator's heartbeat interval.
	PollInterval time.Duration
	// HTTPClient overrides the transport; nil selects a dedicated
	// default client.
	HTTPClient *http.Client
	// Registry receives the worker's metrics; nil selects a fresh
	// private registry.
	Registry *telemetry.Registry
}

// workerMetrics bundles the worker's instruments.
type workerMetrics struct {
	registrations *telemetry.Counter
	shardsDone    *telemetry.Counter
	shardsFailed  *telemetry.Counter
	staleReports  *telemetry.Counter
	shardSeconds  *telemetry.Histogram
	oracle        *oracleObserver
}

// Worker pulls shards from a coordinator and executes them under the
// fault-tolerant harness engine. Create with NewWorker, drive with Run.
type Worker struct {
	opts    WorkerOptions
	hc      *http.Client
	metrics workerMetrics

	// now is the injected clock (only ever the time.Now value outside
	// tests); see the package comment on the detrand discipline.
	now func() time.Time

	registered atomic.Bool
}

// NewWorker returns a worker that will join the given coordinator.
func NewWorker(opts WorkerOptions) *Worker {
	if opts.HTTPClient == nil {
		opts.HTTPClient = &http.Client{}
	}
	if opts.Registry == nil {
		opts.Registry = telemetry.NewRegistry()
	}
	return &Worker{
		opts: opts,
		hc:   opts.HTTPClient,
		metrics: workerMetrics{
			registrations: opts.Registry.Counter("vd_dist_worker_registrations_total", "registrations with the coordinator (including re-registrations)"),
			shardsDone:    opts.Registry.Counter("vd_dist_worker_shards_done_total", "shards executed and reported"),
			shardsFailed:  opts.Registry.Counter("vd_dist_worker_shards_failed_total", "shards whose local execution failed"),
			staleReports:  opts.Registry.Counter("vd_dist_worker_stale_reports_total", "reports rejected for a stale lease"),
			shardSeconds:  opts.Registry.Histogram("vd_dist_worker_shard_seconds", "local shard execution time", 0.01, 0.1, 0.5, 1, 5, 30, 120),
			oracle:        newOracleObserver(opts.Registry),
		},
		now: time.Now,
	}
}

// Registry exposes the worker's metric registry (for /metrics).
func (wk *Worker) Registry() *telemetry.Registry { return wk.opts.Registry }

// Ready reports whether the worker currently holds a registration — the
// readiness signal of a worker process.
func (wk *Worker) Ready() bool { return wk.registered.Load() }

// waitCtx blocks for d or until ctx is cancelled — the same sanctioned
// deterministic-package wait as harness.sleepCtx.
func waitCtx(ctx context.Context, d time.Duration) {
	wctx, cancel := context.WithTimeout(ctx, d)
	defer cancel()
	<-wctx.Done()
}

// Run joins the coordinator and processes shards until ctx is cancelled,
// which is the normal way to stop a worker (Run then returns nil). The
// worker re-registers whenever the coordinator reports its registration
// expired (it was presumed lost and its shards reassigned); by
// determinism any work it reports under a stale lease is discarded
// without harm.
func (wk *Worker) Run(ctx context.Context) error {
	defer wk.registered.Store(false)
	for {
		reg := wk.register(ctx)
		if ctx.Err() != nil {
			return nil
		}
		interval := reg.HeartbeatInterval
		if interval <= 0 {
			interval = time.Second
		}
		poll := wk.opts.PollInterval
		if poll <= 0 {
			poll = interval
		}

		// The heartbeat loop owns the registration: when it sees a 404
		// the registration is gone and the main loop must re-register.
		hbCtx, stopHB := context.WithCancel(ctx)
		lost := make(chan struct{}, 1)
		go wk.heartbeatLoop(hbCtx, reg.Worker, interval, lost)

		wk.workLoop(ctx, reg.Worker, poll, lost)
		stopHB()
		wk.registered.Store(false)
		if ctx.Err() != nil {
			return nil
		}
		// Registration lost: loop around and register again.
	}
}

// register joins the coordinator, retrying until it succeeds or ctx is
// cancelled (check ctx.Err after it returns).
func (wk *Worker) register(ctx context.Context) RegisterResponse {
	for {
		if ctx.Err() != nil {
			return RegisterResponse{}
		}
		var reg RegisterResponse
		_, err := httpJSON(ctx, wk.hc, http.MethodPost, wk.opts.Join+"/dist/v1/workers", nil, &reg)
		if err == nil {
			wk.metrics.registrations.Inc()
			wk.registered.Store(true)
			return reg
		}
		waitCtx(ctx, time.Second)
	}
}

// heartbeatLoop beats at the contract interval until ctx is cancelled or
// the coordinator no longer knows the worker (404), which it signals on
// lost.
func (wk *Worker) heartbeatLoop(ctx context.Context, id string, interval time.Duration, lost chan<- struct{}) {
	url := wk.opts.Join + "/dist/v1/workers/" + id + "/heartbeat"
	for {
		waitCtx(ctx, interval)
		if ctx.Err() != nil {
			return
		}
		status, err := httpJSON(ctx, wk.hc, http.MethodPost, url, nil, nil)
		if err != nil && status == http.StatusNotFound {
			select {
			case lost <- struct{}{}:
			default:
			}
			return
		}
		// Transport errors are ridden out: the coordinator's timeout, not
		// ours, decides when the registration is gone.
	}
}

// workLoop pulls and executes shards until ctx is cancelled or the
// registration is lost; Run decides (via ctx) whether to re-register or
// stop.
func (wk *Worker) workLoop(ctx context.Context, id string, poll time.Duration, lost <-chan struct{}) {
	for {
		select {
		case <-ctx.Done():
			return
		case <-lost:
			return
		default:
		}
		asn, ok, err := wk.pull(ctx, id)
		if err != nil {
			if ctx.Err() != nil {
				return
			}
			// A 404 means the registration expired between heartbeats:
			// hand back to Run to re-register. Transport errors just wait
			// a beat and retry.
			if wk.lostRegistration(err) {
				return
			}
			waitCtx(ctx, poll)
			continue
		}
		if !ok {
			waitCtx(ctx, poll)
			continue
		}
		wk.execute(ctx, id, asn)
	}
}

// lostRegistration recognises the unknown-worker reply in a pull error.
func (wk *Worker) lostRegistration(err error) bool {
	// The helper folds the status into the error text; a 404 on pull can
	// only mean the registration expired.
	return err != nil && errIsStatus(err, http.StatusNotFound)
}

// pull leases the next shard, if any.
func (wk *Worker) pull(ctx context.Context, id string) (ShardAssignment, bool, error) {
	var pr PullResponse
	status, err := httpJSON(ctx, wk.hc, http.MethodPost, wk.opts.Join+"/dist/v1/workers/"+id+"/pull", nil, &pr)
	if err != nil {
		if status == http.StatusNotFound {
			return ShardAssignment{}, false, statusError{status: status, err: err}
		}
		return ShardAssignment{}, false, err
	}
	if status == http.StatusNoContent || pr.Assignment == nil {
		return ShardAssignment{}, false, nil
	}
	return *pr.Assignment, true, nil
}

// execute runs one shard locally and reports the outcome. Local
// execution failure is reported as an error string so the coordinator
// requeues the shard under its bounded budget.
func (wk *Worker) execute(ctx context.Context, id string, asn ShardAssignment) {
	start := wk.now()
	cells, execErr := wk.runShard(ctx, asn)
	wk.metrics.shardSeconds.Observe(wk.now().Sub(start).Seconds())
	// The shard may have regenerated its corpus (and with it the ground
	// truth); fold the oracle counters onto this worker's registry.
	wk.metrics.oracle.observe()

	req := ReportRequest{Worker: id, Campaign: asn.Campaign, Lease: asn.Lease}
	if execErr != nil {
		if ctx.Err() != nil {
			return // shutting down mid-shard; the coordinator's timeout reassigns
		}
		req.Error = execErr.Error()
		wk.metrics.shardsFailed.Inc()
	} else {
		req.Cells = cells
		wk.metrics.shardsDone.Inc()
	}
	wk.report(ctx, asn.Key, req)
}

// runShard regenerates the corpus and suite and executes the case range.
func (wk *Worker) runShard(ctx context.Context, asn ShardAssignment) ([][]harness.CellResult, error) {
	corpus, err := corpusFor(asn.Spec.Workload)
	if err != nil {
		return nil, err
	}
	tools, err := BuildSuite(asn.Spec.Suite)
	if err != nil {
		return nil, err
	}
	return harness.RunShardCtx(ctx, corpus, tools, asn.Spec.Options, asn.Lo, asn.Hi)
}

// report delivers a shard result, retrying transport failures until ctx
// is cancelled. Terminal rejections (stale lease, unknown campaign) are
// accepted silently: the coordinator has moved on and determinism makes
// the loss harmless.
func (wk *Worker) report(ctx context.Context, key string, req ReportRequest) {
	url := wk.opts.Join + "/dist/v1/shards/" + key + "/result"
	for {
		status, err := httpJSON(ctx, wk.hc, http.MethodPost, url, req, nil)
		if err == nil {
			return
		}
		if status != 0 {
			// The server answered: 409 stale lease, 404 unknown, 400 shape.
			// None are retryable.
			if status == http.StatusConflict {
				wk.metrics.staleReports.Inc()
			}
			return
		}
		if ctx.Err() != nil {
			return
		}
		waitCtx(ctx, time.Second)
	}
}

// statusError carries an HTTP status alongside the transport error so
// callers can branch on it with errIsStatus.
type statusError struct {
	status int
	err    error
}

func (e statusError) Error() string { return e.err.Error() }
func (e statusError) Unwrap() error { return e.err }

func errIsStatus(err error, status int) bool {
	se, ok := err.(statusError)
	return ok && se.status == status
}
