package dist

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"time"

	"github.com/dsn2015/vdbench/internal/harness"
	"github.com/dsn2015/vdbench/internal/workload"
)

// Client drives a distributed campaign from the submitting side: submit
// the spec, long-poll for completion, fetch the assembled cell grid and
// run the canonical merge LOCALLY. Merging locally is the point — the
// Campaign handed back is produced by the exact same harness.MergeShards
// fold a local run uses, so distributed and local results are
// byte-identical by construction, not by trusting the coordinator.
type Client struct {
	// Base is the coordinator base URL, e.g. "http://127.0.0.1:8080".
	Base string
	// HTTPClient overrides the transport; nil selects a default client.
	HTTPClient *http.Client
	// PollWait is the long-poll window per status request; zero selects
	// ten seconds.
	PollWait time.Duration
	// ShardCases overrides the shard granularity of specs built by
	// ExecuteCampaign; zero keeps the coordinator default.
	ShardCases int
}

// NewClient returns a client for the coordinator at base.
func NewClient(base string) *Client {
	return &Client{Base: base}
}

func (cl *Client) hc() *http.Client {
	if cl.HTTPClient != nil {
		return cl.HTTPClient
	}
	return http.DefaultClient
}

func (cl *Client) pollWait() time.Duration {
	if cl.PollWait > 0 {
		return cl.PollWait
	}
	return 10 * time.Second
}

// RunCampaign executes the spec on the coordinator's worker fleet and
// returns the merged Campaign. A campaign the coordinator reports as
// failed surfaces as an error with the coordinator's error text — for
// policy aborts that text is identical to what a local run would return.
func (cl *Client) RunCampaign(ctx context.Context, spec CampaignSpec) (*harness.Campaign, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	// Validate locally first: the suite must be registered here anyway
	// for the local merge, and early errors beat round-trips.
	if err := spec.Validate(); err != nil {
		return nil, err
	}

	var sub SubmitResponse
	if _, err := httpJSON(ctx, cl.hc(), http.MethodPost, cl.Base+"/dist/v1/campaigns", spec, &sub); err != nil {
		return nil, err
	}

	st, err := cl.awaitDone(ctx, sub.ID)
	if err != nil {
		return nil, err
	}
	if st.State == "failed" {
		// The coordinator's merge already shaped this error (for policy
		// aborts it is the underlying fault text); pass it through
		// verbatim so distributed failures read exactly like local ones.
		return nil, errors.New(st.Error)
	}

	var cells [][]harness.CellResult
	if _, err := httpJSON(ctx, cl.hc(), http.MethodGet, cl.Base+"/dist/v1/campaigns/"+st.ID+"/cells", nil, &cells); err != nil {
		return nil, err
	}
	corpus, err := corpusFor(spec.Workload)
	if err != nil {
		return nil, err
	}
	tools, err := BuildSuite(spec.Suite)
	if err != nil {
		return nil, err
	}
	return harness.MergeShards(corpus, tools, cells, spec.Options.Degraded)
}

// awaitDone long-polls the status endpoint until the campaign reaches a
// terminal state or ctx is cancelled.
func (cl *Client) awaitDone(ctx context.Context, id string) (CampaignStatus, error) {
	url := fmt.Sprintf("%s/dist/v1/campaigns/%s?wait=%s", cl.Base, id, cl.pollWait())
	for {
		if err := ctx.Err(); err != nil {
			return CampaignStatus{}, err
		}
		var st CampaignStatus
		if _, err := httpJSON(ctx, cl.hc(), http.MethodGet, url, nil, &st); err != nil {
			return CampaignStatus{}, err
		}
		if st.State != "running" {
			return st, nil
		}
	}
}

// ExecuteCampaign adapts the client to the experiments campaign-executor
// seam: it builds a spec from the local campaign inputs and runs it
// distributed. The signature structurally satisfies
// experiments.CampaignExecutor without importing that package.
func (cl *Client) ExecuteCampaign(ctx context.Context, wcfg workload.Config, suite string, opts harness.Options) (*harness.Campaign, error) {
	return cl.RunCampaign(ctx, CampaignSpec{
		Workload:   wcfg,
		Suite:      suite,
		Options:    opts,
		ShardCases: cl.ShardCases,
	})
}
