package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
)

// httpJSON performs one JSON round-trip against a coordinator endpoint.
// A nil in sends no body; a nil out discards any response body. Non-2xx
// responses become errors carrying the server's {"error": ...} text. The
// returned status is valid whenever err came from the server rather than
// the transport (status != 0).
func httpJSON(ctx context.Context, hc *http.Client, method, url string, in, out any) (int, error) {
	var body io.Reader
	if in != nil {
		buf, err := json.Marshal(in)
		if err != nil {
			return 0, fmt.Errorf("dist: encoding %s %s: %w", method, url, err)
		}
		body = bytes.NewReader(buf)
	}
	req, err := http.NewRequestWithContext(ctx, method, url, body)
	if err != nil {
		return 0, fmt.Errorf("dist: %s %s: %w", method, url, err)
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := hc.Do(req)
	if err != nil {
		return 0, fmt.Errorf("dist: %s %s: %w", method, url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		var eb distErrorBody
		if derr := json.NewDecoder(resp.Body).Decode(&eb); derr == nil && eb.Error != "" {
			return resp.StatusCode, fmt.Errorf("dist: %s %s: %s", method, url, eb.Error)
		}
		return resp.StatusCode, fmt.Errorf("dist: %s %s: HTTP %d", method, url, resp.StatusCode)
	}
	if out != nil && resp.StatusCode != http.StatusNoContent {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return resp.StatusCode, fmt.Errorf("dist: decoding %s %s: %w", method, url, err)
		}
	}
	return resp.StatusCode, nil
}
