package dist

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/dsn2015/vdbench/internal/detectors"
	"github.com/dsn2015/vdbench/internal/detectors/faulty"
	"github.com/dsn2015/vdbench/internal/harness"
	"github.com/dsn2015/vdbench/internal/telemetry"
	"github.com/dsn2015/vdbench/internal/workload"
)

// testWorkload is the small corpus the distributed tests run on: big
// enough to split into several shards, small enough to execute the full
// local≡distributed matrix under the race detector.
func testWorkload(seed uint64) workload.Config {
	return workload.Config{Services: 10, TargetPrevalence: 0.5, Seed: seed}
}

// localCampaign is the reference: the plain in-process harness run the
// distributed path must reproduce byte for byte.
func localCampaign(t *testing.T, wcfg workload.Config, opts harness.Options) *harness.Campaign {
	t.Helper()
	corpus, err := workload.Generate(wcfg)
	if err != nil {
		t.Fatal(err)
	}
	tools, err := detectors.StandardSuite()
	if err != nil {
		t.Fatal(err)
	}
	camp, err := harness.RunCtx(context.Background(), corpus, tools, opts)
	if err != nil {
		t.Fatal(err)
	}
	return camp
}

// startCluster brings up a coordinator behind httptest and n workers
// polling it, and tears everything down with the test.
func startCluster(t *testing.T, copts CoordinatorOptions, n int) (*Coordinator, *httptest.Server) {
	t.Helper()
	coord := NewCoordinator(copts)
	srv := httptest.NewServer(coord.Handler())
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wk := NewWorker(WorkerOptions{Join: srv.URL, PollInterval: 5 * time.Millisecond})
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := wk.Run(ctx); err != nil {
				t.Errorf("worker: %v", err)
			}
		}()
	}
	t.Cleanup(func() {
		cancel()
		wg.Wait()
		srv.Close()
		if err := coord.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	})
	return coord, srv
}

// TestDistributedMatchesLocalMatrix is the acceptance matrix: every
// (seed, campaign workers, worker processes) combination must reproduce
// the local campaign deep-equal, execution ledgers included.
func TestDistributedMatchesLocalMatrix(t *testing.T) {
	for _, seed := range []uint64{1, 7, 42} {
		wcfg := testWorkload(seed)
		baselines := map[int]*harness.Campaign{}
		for _, campWorkers := range []int{1, 2, 4} {
			baselines[campWorkers] = localCampaign(t, wcfg, harness.Options{Seed: seed, Workers: campWorkers})
		}
		// Campaign workers must not perturb output either; lock that in
		// before comparing against the distributed runs.
		for _, campWorkers := range []int{2, 4} {
			if !reflect.DeepEqual(baselines[1], baselines[campWorkers]) {
				t.Fatalf("seed %d: local campaign differs between 1 and %d workers", seed, campWorkers)
			}
		}
		for _, campWorkers := range []int{1, 2, 4} {
			for _, procs := range []int{1, 2, 3} {
				name := fmt.Sprintf("seed=%d/workers=%d/procs=%d", seed, campWorkers, procs)
				t.Run(name, func(t *testing.T) {
					_, srv := startCluster(t, CoordinatorOptions{}, procs)
					client := NewClient(srv.URL)
					client.PollWait = 50 * time.Millisecond
					got, err := client.RunCampaign(context.Background(), CampaignSpec{
						Workload:   wcfg,
						Suite:      "standard",
						Options:    harness.Options{Seed: seed, Workers: campWorkers},
						ShardCases: 3,
					})
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(got, baselines[campWorkers]) {
						t.Fatalf("distributed campaign differs from local run")
					}
				})
			}
		}
	}
}

// TestDistributedSurvivesWorkerLoss kills workers mid-campaign — one
// real worker cancelled while executing, plus a black-hole worker that
// leases a shard and never reports nor beats — and requires the output
// to stay byte-identical to the fault-free local run.
func TestDistributedSurvivesWorkerLoss(t *testing.T) {
	const seed = 7
	wcfg := testWorkload(seed)
	opts := harness.Options{Seed: seed, Workers: 2}
	want := localCampaign(t, wcfg, opts)

	coord := NewCoordinator(CoordinatorOptions{
		HeartbeatInterval: 10 * time.Millisecond,
		HeartbeatTimeout:  50 * time.Millisecond,
	})
	defer coord.Close()
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	spec := CampaignSpec{Workload: wcfg, Suite: "standard", Options: opts, ShardCases: 2}
	id, err := coord.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}

	// The black hole: registers, leases one shard, then goes silent. Its
	// shard MUST be reassigned for the campaign to complete.
	blackHole, err := coord.Register()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := coord.Pull(blackHole); err != nil || !ok {
		t.Fatalf("black-hole pull: ok=%v err=%v", ok, err)
	}

	// One real worker that is cancelled shortly after it starts pulling.
	doomedCtx, cancelDoomed := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = NewWorker(WorkerOptions{Join: srv.URL, PollInterval: 2 * time.Millisecond}).Run(doomedCtx)
	}()
	go func() {
		wctx, wcancel := context.WithTimeout(context.Background(), 25*time.Millisecond)
		defer wcancel()
		<-wctx.Done()
		cancelDoomed()
	}()

	// Two healthy workers carry the campaign home.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = NewWorker(WorkerOptions{Join: srv.URL, PollInterval: 2 * time.Millisecond}).Run(ctx)
		}()
	}
	defer wg.Wait()
	defer cancel()

	wctx, wcancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer wcancel()
	got, err := coord.Wait(wctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("campaign after worker loss differs from fault-free local run")
	}
	if lost := coord.Registry().Counter("vd_dist_workers_lost_total", "").Value(); lost == 0 {
		t.Error("expected at least one worker to be expired")
	}
	if re := coord.Registry().Counter("vd_dist_shards_reassigned_total", "").Value(); re == 0 {
		t.Error("expected at least one shard reassignment")
	}
}

// TestStaleLeaseReportRejected drives the lease protocol by hand: a
// worker that lost its lease gets ErrStaleLease and the shard's second
// assignment wins.
func TestStaleLeaseReportRejected(t *testing.T) {
	const seed = 3
	wcfg := testWorkload(seed)
	coord := NewCoordinator(CoordinatorOptions{
		HeartbeatInterval: 5 * time.Millisecond,
		HeartbeatTimeout:  25 * time.Millisecond,
	})
	defer coord.Close()

	spec := CampaignSpec{Workload: wcfg, Suite: "standard", Options: harness.Options{Seed: seed}, ShardCases: 100}
	id, err := coord.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}

	w1, err := coord.Register()
	if err != nil {
		t.Fatal(err)
	}
	asn1, ok, err := coord.Pull(w1)
	if err != nil || !ok {
		t.Fatalf("pull: ok=%v err=%v", ok, err)
	}

	// Execute the (single) shard up front so the reports below are
	// instant — w2 must not expire between its pull and its report.
	corpus, err := corpusFor(wcfg)
	if err != nil {
		t.Fatal(err)
	}
	tools, err := BuildSuite("standard")
	if err != nil {
		t.Fatal(err)
	}
	cells, err := harness.RunShardCtx(context.Background(), corpus, tools, spec.Options, asn1.Lo, asn1.Hi)
	if err != nil {
		t.Fatal(err)
	}

	// Let w1 expire, then hand the shard to w2, beating w2 while we wait.
	w2, err := coord.Register()
	if err != nil {
		t.Fatal(err)
	}
	var asn2 ShardAssignment
	deadline, dcancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer dcancel()
	for {
		if err := coord.Heartbeat(w2); err != nil {
			t.Fatal(err)
		}
		asn2, ok, err = coord.Pull(w2)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			break
		}
		if deadline.Err() != nil {
			t.Fatal("shard never reassigned after worker expiry")
		}
		waitCtx(deadline, 5*time.Millisecond)
	}
	if asn2.Key != asn1.Key {
		t.Fatalf("reassigned key %s != original %s", asn2.Key, asn1.Key)
	}
	if asn2.Lease <= asn1.Lease {
		t.Fatalf("reassignment did not advance the lease: %d -> %d", asn1.Lease, asn2.Lease)
	}

	// The expired worker's report must bounce.
	err = coord.Report(w1, asn1.Campaign, asn1.Key, asn1.Lease, cells, "")
	if err != ErrStaleLease {
		t.Fatalf("stale report: got %v, want ErrStaleLease", err)
	}
	// The current leaseholder's report completes the campaign.
	if err := coord.Report(w2, asn2.Campaign, asn2.Key, asn2.Lease, cells, ""); err != nil {
		t.Fatal(err)
	}
	wctx, wcancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer wcancel()
	if _, err := coord.Wait(wctx, id); err != nil {
		t.Fatal(err)
	}
}

// TestReassignmentExhaustionFailsCampaign starves a shard of workers:
// every leaseholder vanishes, and after MaxReassign requeues the
// campaign fails instead of spinning forever.
func TestReassignmentExhaustionFailsCampaign(t *testing.T) {
	wcfg := testWorkload(5)
	coord := NewCoordinator(CoordinatorOptions{
		HeartbeatInterval: 5 * time.Millisecond,
		HeartbeatTimeout:  20 * time.Millisecond,
		MaxReassign:       2,
	})
	defer coord.Close()
	id, err := coord.Submit(CampaignSpec{Workload: wcfg, Suite: "standard", Options: harness.Options{Seed: 5}, ShardCases: 100})
	if err != nil {
		t.Fatal(err)
	}
	// Each round: a fresh worker leases the shard and goes silent.
	deadline, dcancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer dcancel()
	for {
		st, err := coord.Status(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State == "failed" {
			if !strings.Contains(st.Error, "giving up") {
				t.Fatalf("unexpected failure text: %s", st.Error)
			}
			return
		}
		if deadline.Err() != nil {
			t.Fatal("campaign never failed despite losing every leaseholder")
		}
		w, err := coord.Register()
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := coord.Pull(w); err != nil {
			t.Fatal(err)
		}
		waitCtx(deadline, 5*time.Millisecond)
	}
}

// registerFaultySuite registers a fault-wrapped standard suite under a
// unique name and returns the name plus a local builder for baselines.
func registerFaultySuite(t *testing.T, cfg faulty.Config) (string, func() []detectors.Tool) {
	t.Helper()
	name := fmt.Sprintf("faulty-%s-rate%g-seed%d-fbs%d", cfg.Mode, cfg.Rate, cfg.Seed, cfg.FailuresBeforeSuccess)
	build := func() ([]detectors.Tool, error) {
		base, err := detectors.StandardSuite()
		if err != nil {
			return nil, err
		}
		out := make([]detectors.Tool, len(base))
		for i, tool := range base {
			w, err := faulty.Wrap(tool, cfg)
			if err != nil {
				return nil, err
			}
			out[i] = w
		}
		return out, nil
	}
	if err := RegisterSuite(name, build); err != nil && !strings.Contains(err.Error(), "already registered") {
		t.Fatal(err)
	}
	mustBuild := func() []detectors.Tool {
		tools, err := build()
		if err != nil {
			t.Fatal(err)
		}
		return tools
	}
	return name, mustBuild
}

// TestDistributedFaultySkipMatchesLocal runs a transiently failing suite
// under DegradedSkip with retries and compares the distributed campaign
// to the local one on the JSON wire encoding (fault records keep their
// unexported original error only in-process, so DeepEqual would be
// vacuously strict here).
func TestDistributedFaultySkipMatchesLocal(t *testing.T) {
	const seed = 11
	wcfg := testWorkload(seed)
	fcfg := faulty.Config{Mode: faulty.ModeTransient, Rate: 0.3, Seed: seed, FailuresBeforeSuccess: 5}
	suite, buildLocal := registerFaultySuite(t, fcfg)
	opts := harness.Options{
		Seed:     seed,
		Workers:  2,
		Retry:    harness.RetryPolicy{MaxRetries: 2},
		Degraded: harness.DegradedSkip,
	}

	corpus, err := workload.Generate(wcfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := harness.RunCtx(context.Background(), corpus, buildLocal(), opts)
	if err != nil {
		t.Fatal(err)
	}

	_, srv := startCluster(t, CoordinatorOptions{}, 2)
	client := NewClient(srv.URL)
	client.PollWait = 50 * time.Millisecond
	got, err := client.RunCampaign(context.Background(), CampaignSpec{
		Workload: wcfg, Suite: suite, Options: opts, ShardCases: 3,
	})
	if err != nil {
		t.Fatal(err)
	}

	wantJSON, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	gotJSON, err := json.Marshal(got)
	if err != nil {
		t.Fatal(err)
	}
	if string(wantJSON) != string(gotJSON) {
		t.Fatal("faulty distributed campaign differs from local run on the wire encoding")
	}
}

// TestDistributedAbortErrorMatchesLocal checks the DegradedAbort path:
// the distributed error text must be exactly the local one, even though
// the fault record crossed a process boundary.
func TestDistributedAbortErrorMatchesLocal(t *testing.T) {
	const seed = 9
	wcfg := testWorkload(seed)
	fcfg := faulty.Config{Mode: faulty.ModePanic, Rate: 0.2, Seed: seed}
	suite, buildLocal := registerFaultySuite(t, fcfg)
	opts := harness.Options{Seed: seed, Workers: 2, Degraded: harness.DegradedAbort}

	corpus, err := workload.Generate(wcfg)
	if err != nil {
		t.Fatal(err)
	}
	_, localErr := harness.RunCtx(context.Background(), corpus, buildLocal(), opts)
	if localErr == nil {
		t.Fatal("expected the local abort-policy run to fail")
	}

	_, srv := startCluster(t, CoordinatorOptions{}, 2)
	client := NewClient(srv.URL)
	client.PollWait = 50 * time.Millisecond
	_, distErr := client.RunCampaign(context.Background(), CampaignSpec{
		Workload: wcfg, Suite: suite, Options: opts, ShardCases: 3,
	})
	if distErr == nil {
		t.Fatal("expected the distributed abort-policy run to fail")
	}
	if localErr.Error() != distErr.Error() {
		t.Fatalf("abort error text diverged:\nlocal: %s\ndist:  %s", localErr, distErr)
	}
}

// TestShardKeyCanonicalization pins the content-address semantics:
// output-affecting fields move the key, operational knobs do not.
func TestShardKeyCanonicalization(t *testing.T) {
	base := CampaignSpec{
		Workload: testWorkload(1),
		Suite:    "standard",
		Options:  harness.Options{Seed: 4, Retry: harness.RetryPolicy{MaxRetries: 1, Backoff: time.Millisecond}},
	}
	key := base.ShardKey(0, 8)

	if got := base.ShardKey(0, 8); got != key {
		t.Fatal("shard key not stable across calls")
	}
	if got := base.ShardKey(8, 16); got == key {
		t.Fatal("shard key insensitive to case range")
	}
	mut := base
	mut.Workload.Seed = 2
	if mut.ShardKey(0, 8) == key {
		t.Fatal("shard key insensitive to workload seed")
	}
	mut = base
	mut.Options.Seed = 5
	if mut.ShardKey(0, 8) == key {
		t.Fatal("shard key insensitive to execution seed")
	}
	mut = base
	mut.Suite = "other"
	if mut.ShardKey(0, 8) == key {
		t.Fatal("shard key insensitive to suite")
	}
	mut = base
	mut.Options.Degraded = harness.DegradedSkip
	if mut.ShardKey(0, 8) == key {
		t.Fatal("shard key insensitive to degraded policy")
	}

	// Operational knobs must NOT move the key: the output is invariant
	// under them, and shard identity should be too.
	mut = base
	mut.Options.Workers = 7
	mut.Options.PerToolTimeout = time.Minute
	mut.Options.Retry.Backoff = time.Second
	mut.Options.Interpreter = true
	if mut.ShardKey(0, 8) != key {
		t.Fatal("shard key sensitive to an operational knob")
	}
}

// TestSubmitRejectsBadSpecs covers validation at the boundary.
func TestSubmitRejectsBadSpecs(t *testing.T) {
	coord := NewCoordinator(CoordinatorOptions{})
	defer coord.Close()
	cases := []CampaignSpec{
		{Workload: workload.Config{Services: 0, TargetPrevalence: 0.5}, Suite: "standard"},
		{Workload: testWorkload(1), Suite: "no-such-suite"},
		{Workload: testWorkload(1), Suite: "standard", ShardCases: -1},
		{Workload: testWorkload(1), Suite: "standard", Options: harness.Options{PerToolTimeout: -time.Second}},
	}
	for i, spec := range cases {
		if _, err := coord.Submit(spec); err == nil {
			t.Errorf("case %d: bad spec accepted", i)
		}
	}
}

// TestCoordinatorReadiness covers the drain-aware readiness endpoint.
func TestCoordinatorReadiness(t *testing.T) {
	coord := NewCoordinator(CoordinatorOptions{})
	defer coord.Close()
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	get := func(path string) int {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := get("/healthz/live"); got != http.StatusOK {
		t.Fatalf("live: %d", got)
	}
	if got := get("/healthz/ready"); got != http.StatusOK {
		t.Fatalf("ready before drain: %d", got)
	}
	coord.BeginDrain()
	if got := get("/healthz/live"); got != http.StatusOK {
		t.Fatalf("live while draining: %d", got)
	}
	if got := get("/healthz/ready"); got != http.StatusServiceUnavailable {
		t.Fatalf("ready while draining: %d", got)
	}
}

// TestSuiteRegistry covers the duplicate and unknown paths.
func TestSuiteRegistry(t *testing.T) {
	if err := RegisterSuite("standard", func() ([]detectors.Tool, error) { return nil, nil }); err == nil {
		t.Fatal("duplicate registration accepted")
	}
	if err := RegisterSuite("", func() ([]detectors.Tool, error) { return nil, nil }); err == nil {
		t.Fatal("empty name accepted")
	}
	if _, err := BuildSuite("definitely-not-registered"); err == nil {
		t.Fatal("unknown suite built")
	}
}

// TestCorpusCacheReusesCorpora pins the cache contract: same config,
// same instance; the cached Corpus echoes its Config exactly.
func TestCorpusCacheReusesCorpora(t *testing.T) {
	cfg := testWorkload(21)
	a, err := corpusFor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := corpusFor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("cache did not reuse the corpus instance")
	}
	if !reflect.DeepEqual(a.Config, cfg) {
		t.Fatal("cached corpus does not echo its config")
	}
	icfg := cfg
	icfg.Interpreter = true
	c, err := corpusFor(icfg)
	if err != nil {
		t.Fatal(err)
	}
	if c == a {
		t.Fatal("cache conflated interpreter and VM configs")
	}
}

// TestDistributedOracleCacheCounters runs a campaign on a two-worker
// cluster after a local baseline warmed the process-wide oracle cache,
// and asserts two things: the merged campaign deep-equals the local run,
// and the cluster's vd_oracle_* counters show the corpus regeneration
// being served entirely from the content-addressed cache — hits advance
// somewhere in the cluster, and not a single fresh probe executes.
func TestDistributedOracleCacheCounters(t *testing.T) {
	const seed = 9001 // fresh seed: no other test has this corpus cached
	wcfg := workload.Config{Services: 8, TargetPrevalence: 0.5, Seed: seed}
	opts := harness.Options{Seed: seed, Workers: 2}

	// The local baseline derives every ground truth the hard way and
	// leaves the derivations in the process-wide oracle cache.
	want := localCampaign(t, wcfg, opts)

	// The cluster is constructed after the baseline, so its observers
	// baseline past the local run and attribute only distributed work.
	coord := NewCoordinator(CoordinatorOptions{})
	srv := httptest.NewServer(coord.Handler())
	ctx, cancel := context.WithCancel(context.Background())
	workerRegs := []*telemetry.Registry{telemetry.NewRegistry(), telemetry.NewRegistry()}
	var wg sync.WaitGroup
	for _, reg := range workerRegs {
		wk := NewWorker(WorkerOptions{Join: srv.URL, PollInterval: 5 * time.Millisecond, Registry: reg})
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := wk.Run(ctx); err != nil {
				t.Errorf("worker: %v", err)
			}
		}()
	}
	defer func() {
		cancel()
		wg.Wait()
		srv.Close()
		if err := coord.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}()

	// Drop the process-local corpus cache: the distributed run must now
	// regenerate the corpus, and that regeneration is what consults the
	// oracle cache the baseline just filled.
	corpusCacheMu.Lock()
	corpusCache = nil
	corpusCacheMu.Unlock()

	client := NewClient(srv.URL)
	client.PollWait = 50 * time.Millisecond
	got, err := client.RunCampaign(ctx, CampaignSpec{
		Workload:   wcfg,
		Suite:      "standard",
		Options:    opts,
		ShardCases: 3, // several shards, so both workers get work
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("distributed campaign differs from local run")
	}

	// Every party exposes the oracle counters; the regeneration was
	// attributed to whichever process-side observer saw it first.
	regs := append([]*telemetry.Registry{coord.Registry()}, workerRegs...)
	var hits, probes uint64
	for _, reg := range regs {
		snap := reg.Snapshot()
		for _, name := range []string{"vd_oracle_probes_total", "vd_oracle_pruned_total",
			"vd_oracle_early_exits_total", "vd_oracle_cache_hits_total", "vd_oracle_cache_misses_total"} {
			if !strings.Contains(snap, name) {
				t.Fatalf("registry missing %s:\n%s", name, snap)
			}
		}
		hits += reg.Counter("vd_oracle_cache_hits_total", "").Value()
		probes += reg.Counter("vd_oracle_probes_total", "").Value()
	}
	if hits == 0 {
		t.Fatal("corpus regeneration did not hit the oracle cache anywhere in the cluster")
	}
	if probes != 0 {
		t.Fatalf("distributed run executed %d fresh probes; every derivation should have been cached", probes)
	}
}
