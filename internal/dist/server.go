package dist

// The coordinator's HTTP surface. Everything is stdlib net/http + JSON;
// the mux is explicit (never http.DefaultServeMux) and the handler shapes
// mirror internal/service: uniform {"error": ...} bodies, bounded request
// sizes, long-polling via context deadlines on the request context.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"github.com/dsn2015/vdbench/internal/harness"
)

// maxSpecBytes bounds campaign submissions (a config, not a corpus).
const maxSpecBytes = 1 << 20

// maxReportBytes bounds shard reports; cells carry full per-sink
// ledgers, so the cap is generous.
const maxReportBytes = 256 << 20

// maxStatusWait bounds campaign long-polls regardless of the client's
// requested wait.
const maxStatusWait = 10 * time.Minute

// RegisterResponse is the reply to a worker registration.
type RegisterResponse struct {
	Worker string `json:"worker"`
	// HeartbeatInterval and HeartbeatTimeout are nanoseconds; the worker
	// must beat at the interval and re-register if it ever learns it
	// expired (404 on heartbeat).
	HeartbeatInterval time.Duration `json:"heartbeat_interval"`
	HeartbeatTimeout  time.Duration `json:"heartbeat_timeout"`
}

// PullResponse is the reply to a work pull; Assignment is nil when no
// shard is pending.
type PullResponse struct {
	Assignment *ShardAssignment `json:"assignment,omitempty"`
}

// ReportRequest is the body of a shard result report. Exactly one of
// Error and Cells is meaningful: a non-empty Error reports that the
// worker could not execute the shard, and requeues it.
type ReportRequest struct {
	Worker   string                 `json:"worker"`
	Campaign string                 `json:"campaign"`
	Lease    uint64                 `json:"lease"`
	Error    string                 `json:"error,omitempty"`
	Cells    [][]harness.CellResult `json:"cells,omitempty"`
}

// SubmitResponse is the reply to a campaign submission.
type SubmitResponse struct {
	ID string `json:"id"`
}

// Handler returns the coordinator's HTTP API:
//
//	POST /dist/v1/workers                 register; returns worker ID and heartbeat contract
//	POST /dist/v1/workers/{id}/heartbeat  sign of life (204; 404 once expired — re-register)
//	POST /dist/v1/workers/{id}/pull       lease the next shard (200 with assignment, or 204)
//	POST /dist/v1/shards/{key}/result     report an executed shard (204; 409 stale lease)
//	POST /dist/v1/campaigns               submit a campaign spec (202 with ID)
//	GET  /dist/v1/campaigns/{id}          status; ?wait=30s long-polls for a terminal state
//	GET  /dist/v1/campaigns/{id}/cells    assembled cell grid of a completed campaign
//	GET  /healthz/live                    process liveness
//	GET  /healthz/ready                   readiness; 503 while draining or closed
//	GET  /healthz                         compatibility alias for liveness
//	GET  /metrics                         telemetry snapshot
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /dist/v1/workers", c.handleRegister)
	mux.HandleFunc("POST /dist/v1/workers/{id}/heartbeat", c.handleHeartbeat)
	mux.HandleFunc("POST /dist/v1/workers/{id}/pull", c.handlePull)
	mux.HandleFunc("POST /dist/v1/shards/{key}/result", c.handleReport)
	mux.HandleFunc("POST /dist/v1/campaigns", c.handleSubmit)
	mux.HandleFunc("GET /dist/v1/campaigns/{id}", c.handleStatus)
	mux.HandleFunc("GET /dist/v1/campaigns/{id}/cells", c.handleCells)
	mux.HandleFunc("GET /healthz/live", handleLive)
	mux.HandleFunc("GET /healthz/ready", c.handleReady)
	mux.HandleFunc("GET /healthz", handleLive)
	mux.HandleFunc("GET /metrics", c.handleMetrics)
	return mux
}

// distWriteJSON mirrors internal/service's writeJSON.
func distWriteJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v) // status line is out; nothing useful to do on error
}

type distErrorBody struct {
	Error string `json:"error"`
}

func distWriteError(w http.ResponseWriter, code int, format string, args ...any) {
	distWriteJSON(w, code, distErrorBody{Error: fmt.Sprintf(format, args...)})
}

// errStatus maps the package's sentinel errors to HTTP status codes.
func errStatus(err error) int {
	switch {
	case errors.Is(err, ErrClosed):
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrUnknownWorker), errors.Is(err, ErrUnknownCampaign):
		return http.StatusNotFound
	case errors.Is(err, ErrStaleLease):
		return http.StatusConflict
	default:
		return http.StatusBadRequest
	}
}

func (c *Coordinator) handleRegister(w http.ResponseWriter, _ *http.Request) {
	id, err := c.Register()
	if err != nil {
		distWriteError(w, errStatus(err), "%v", err)
		return
	}
	distWriteJSON(w, http.StatusOK, RegisterResponse{
		Worker:            id,
		HeartbeatInterval: c.opts.HeartbeatInterval,
		HeartbeatTimeout:  c.opts.HeartbeatTimeout,
	})
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	if err := c.Heartbeat(r.PathValue("id")); err != nil {
		distWriteError(w, errStatus(err), "%v", err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (c *Coordinator) handlePull(w http.ResponseWriter, r *http.Request) {
	asn, ok, err := c.Pull(r.PathValue("id"))
	if err != nil {
		distWriteError(w, errStatus(err), "%v", err)
		return
	}
	if !ok {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	distWriteJSON(w, http.StatusOK, PullResponse{Assignment: &asn})
}

func (c *Coordinator) handleReport(w http.ResponseWriter, r *http.Request) {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxReportBytes))
	var req ReportRequest
	if err := dec.Decode(&req); err != nil {
		distWriteError(w, http.StatusBadRequest, "malformed shard report: %v", err)
		return
	}
	err := c.Report(req.Worker, req.Campaign, r.PathValue("key"), req.Lease, req.Cells, req.Error)
	if err != nil {
		distWriteError(w, errStatus(err), "%v", err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (c *Coordinator) handleSubmit(w http.ResponseWriter, r *http.Request) {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSpecBytes))
	dec.DisallowUnknownFields()
	var spec CampaignSpec
	if err := dec.Decode(&spec); err != nil {
		distWriteError(w, http.StatusBadRequest, "malformed campaign spec: %v", err)
		return
	}
	id, err := c.Submit(spec)
	if err != nil {
		distWriteError(w, errStatus(err), "%v", err)
		return
	}
	w.Header().Set("Location", "/dist/v1/campaigns/"+id)
	distWriteJSON(w, http.StatusAccepted, SubmitResponse{ID: id})
}

func (c *Coordinator) handleStatus(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if waitSpec := r.URL.Query().Get("wait"); waitSpec != "" {
		d, err := time.ParseDuration(waitSpec)
		if err != nil || d < 0 {
			distWriteError(w, http.StatusBadRequest, "bad wait duration %q", waitSpec)
			return
		}
		ctx, cancel := context.WithTimeout(r.Context(), min(d, maxStatusWait))
		defer cancel()
		st, err := c.WaitStatus(ctx, id)
		if err != nil {
			distWriteError(w, errStatus(err), "%v", err)
			return
		}
		distWriteJSON(w, http.StatusOK, st)
		return
	}
	st, err := c.Status(id)
	if err != nil {
		distWriteError(w, errStatus(err), "%v", err)
		return
	}
	distWriteJSON(w, http.StatusOK, st)
}

func (c *Coordinator) handleCells(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	cells, err := c.Cells(id)
	switch {
	case errors.Is(err, ErrNotDone):
		st, _ := c.Status(id)
		w.Header().Set("Retry-After", "1")
		distWriteJSON(w, http.StatusAccepted, st)
		return
	case err != nil:
		// A failed campaign's cells are gone; the status endpoint carries
		// the error. Distinguish unknown IDs from failures.
		if errors.Is(err, ErrUnknownCampaign) {
			distWriteError(w, http.StatusNotFound, "%v", err)
			return
		}
		distWriteError(w, http.StatusConflict, "campaign %s failed: %v", id, err)
		return
	}
	distWriteJSON(w, http.StatusOK, cells)
}

func handleLive(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_, _ = io.WriteString(w, "ok\n")
}

func (c *Coordinator) handleReady(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if !c.Ready() {
		w.WriteHeader(http.StatusServiceUnavailable)
		_, _ = io.WriteString(w, "draining\n")
		return
	}
	_, _ = io.WriteString(w, "ok\n")
}

func (c *Coordinator) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = io.WriteString(w, c.opts.Registry.Snapshot())
}
