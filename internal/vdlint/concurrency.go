package vdlint

import (
	"go/ast"
	"go/types"
)

// CtxFlow enforces that contexts flow down the call stack instead of
// being parked in struct fields or minted mid-pipeline. Two shapes are
// flagged: a struct field of type context.Context (the documented
// anti-pattern — a stored context outlives the request it belonged to
// and silently detaches cancellation), and a context.Background() /
// context.TODO() call inside a function that already receives a
// context, which severs the caller's deadline and cancellation. The one
// sanctioned shape for the latter is nil-defaulting — assigning
// Background directly to the context parameter when the caller passed
// nil — which the harness and experiments packages use at their public
// entry points.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc:  "contexts must flow as arguments: no context.Context struct fields, no Background/TODO inside ctx-taking functions",
	Run:  runCtxFlow,
}

func runCtxFlow(pass *Pass) {
	if pass.Pkg.Kind != UnitPrimary {
		return // tests routinely mint Background contexts; that is their job
	}
	info := pass.Pkg.TypesInfo
	for _, file := range pass.Pkg.Owned {
		for _, d := range file.Decls {
			switch d := d.(type) {
			case *ast.GenDecl:
				ast.Inspect(d, func(n ast.Node) bool {
					st, ok := n.(*ast.StructType)
					if !ok {
						return true
					}
					for _, field := range st.Fields.List {
						if isContextType(info.TypeOf(field.Type)) {
							pass.Reportf(field.Pos(),
								"struct field stores a context.Context; pass the context to the methods that need it instead")
						}
					}
					return true
				})
			case *ast.FuncDecl:
				checkCtxFlowFunc(pass, info, d)
			}
		}
	}
}

// checkCtxFlowFunc flags Background/TODO calls inside a function that
// already has a context parameter, excepting direct assignment to that
// parameter (the nil-defaulting idiom: if ctx == nil { ctx =
// context.Background() }).
func checkCtxFlowFunc(pass *Pass, info *types.Info, fn *ast.FuncDecl) {
	if fn.Body == nil || fn.Type.Params == nil {
		return
	}
	var ctxParams []types.Object
	for _, field := range fn.Type.Params.List {
		if !isContextType(info.TypeOf(field.Type)) {
			continue
		}
		for _, name := range field.Names {
			if obj := info.Defs[name]; obj != nil {
				ctxParams = append(ctxParams, obj)
			}
		}
	}
	if len(ctxParams) == 0 {
		return
	}
	isCtxParam := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return false
		}
		obj := info.Uses[id]
		for _, p := range ctxParams {
			if obj == p {
				return true
			}
		}
		return false
	}
	exempt := map[ast.Node]bool{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if as, ok := n.(*ast.AssignStmt); ok && len(as.Lhs) == len(as.Rhs) {
			for i, lhs := range as.Lhs {
				if isCtxParam(lhs) {
					exempt[ast.Unparen(as.Rhs[i])] = true
				}
			}
		}
		return true
	})
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || exempt[call] {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok &&
			isPkgFunc(info, sel, "context", "Background", "TODO") {
			pass.Reportf(call.Pos(),
				"%s already receives a context; context.%s here discards the caller's cancellation and deadline",
				fn.Name.Name, sel.Sel.Name)
		}
		return true
	})
}

// LockCopy flags signatures that copy a lock: a parameter, result or
// value receiver whose type transitively contains a sync primitive
// (Mutex, RWMutex, WaitGroup, Once, Cond, Pool, Map) or a sync/atomic
// value type. A copied mutex guards nothing, a copied WaitGroup waits on
// nothing, and the race detector only catches the ones a test happens to
// exercise. go vet's copylocks covers assignments and function calls;
// this check closes the declaration side so the bad signature never
// exists in the first place.
var LockCopy = &Analyzer{
	Name: "lockcopy",
	Doc:  "parameters, results and value receivers must not contain sync primitives by value",
	Run:  runLockCopy,
}

func runLockCopy(pass *Pass) {
	info := pass.Pkg.TypesInfo
	for _, file := range pass.Pkg.Owned {
		for _, d := range file.Decls {
			fn, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			check := func(field *ast.Field, what string) {
				t := info.TypeOf(field.Type)
				if t == nil {
					return
				}
				if lock := containsLock(t, nil); lock != "" {
					pass.Reportf(field.Pos(),
						"%s of %s passes %s by value, copying its %s; use a pointer", what, fn.Name.Name, t.String(), lock)
				}
			}
			if fn.Recv != nil {
				for _, field := range fn.Recv.List {
					check(field, "receiver")
				}
			}
			if fn.Type.Params != nil {
				for _, field := range fn.Type.Params.List {
					check(field, "parameter")
				}
			}
			if fn.Type.Results != nil {
				for _, field := range fn.Type.Results.List {
					check(field, "result")
				}
			}
		}
	}
}

// containsLock reports the first sync primitive a type transitively
// holds by value ("" if none). Pointers, slices, maps and channels are
// indirections and stop the walk.
func containsLock(t types.Type, seen []types.Type) string {
	for _, s := range seen {
		if types.Identical(s, t) {
			return ""
		}
	}
	seen = append(seen, t)
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil {
			switch obj.Pkg().Path() {
			case "sync":
				switch obj.Name() {
				case "Mutex", "RWMutex", "WaitGroup", "Once", "Cond", "Pool", "Map":
					return "sync." + obj.Name()
				}
			case "sync/atomic":
				switch obj.Name() {
				case "Bool", "Int32", "Int64", "Uint32", "Uint64", "Uintptr", "Pointer", "Value":
					return "atomic." + obj.Name()
				}
			}
		}
		return containsLock(named.Underlying(), seen)
	}
	switch t := t.(type) {
	case *types.Struct:
		for i := 0; i < t.NumFields(); i++ {
			if lock := containsLock(t.Field(i).Type(), seen); lock != "" {
				return lock
			}
		}
	case *types.Array:
		return containsLock(t.Elem(), seen)
	}
	return ""
}

// LeakyGo flags `go` statements whose body has no visible termination
// path: no channel operation, no select, no range over a channel, no
// context use, no WaitGroup Done/Wait. Such a goroutine cannot be told
// to stop and cannot signal that it stopped — the classic leak that
// keeps campaign workers alive past their deadline. The check looks
// inside function literals and same-package named functions; a call into
// another package is conservatively trusted.
var LeakyGo = &Analyzer{
	Name: "leakygo",
	Doc:  "go statements need a termination path: a channel op, select, context, or WaitGroup in the body",
	Run:  runLeakyGo,
}

func runLeakyGo(pass *Pass) {
	info := pass.Pkg.TypesInfo
	// Named-function bodies in this unit, for `go pkgFunc(...)`.
	bodies := map[*types.Func]*ast.BlockStmt{}
	for _, file := range pass.Pkg.Files {
		for _, d := range file.Decls {
			if fn, ok := d.(*ast.FuncDecl); ok && fn.Body != nil {
				if obj, ok := info.Defs[fn.Name].(*types.Func); ok {
					bodies[obj] = fn.Body
				}
			}
		}
	}
	for _, file := range pass.Pkg.Owned {
		ast.Inspect(file, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			var body ast.Node
			switch fun := ast.Unparen(g.Call.Fun).(type) {
			case *ast.FuncLit:
				body = fun.Body
			default:
				callee := staticCallee(info, g.Call)
				if callee == nil {
					return true // func value or interface method: unknown body
				}
				b, ok := bodies[callee]
				if !ok {
					return true // other package or no body: trust it
				}
				body = b
			}
			// Arguments count too: `go worker(jobs)` with jobs a channel is
			// a ranged worker even before we look inside.
			if !hasTerminationPath(info, body) && !anyChannelArg(info, g.Call) {
				pass.Reportf(g.Pos(),
					"goroutine has no termination path (no channel op, select, context or WaitGroup); it cannot be stopped or awaited")
			}
			return true
		})
	}
}

// hasTerminationPath scans a goroutine body for any construct that lets
// the goroutine stop or be observed stopping.
func hasTerminationPath(info *types.Info, body ast.Node) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt, *ast.SelectStmt:
			found = true
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				found = true
			}
		case *ast.RangeStmt:
			if t := info.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					found = true
				}
			}
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				if obj, ok := info.Uses[sel.Sel].(*types.Func); ok && obj.Pkg() != nil &&
					obj.Pkg().Path() == "sync" && (obj.Name() == "Done" || obj.Name() == "Wait" || obj.Name() == "Add") {
					found = true
				}
			}
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "close" {
				if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
					found = true
				}
			}
		case *ast.Ident:
			if obj := info.Uses[n]; obj != nil && isContextType(obj.Type()) {
				found = true
			}
		}
		return !found
	})
	return found
}

// anyChannelArg reports whether any argument of the call is a channel —
// a worker launched with its job channel terminates by ranging it.
func anyChannelArg(info *types.Info, call *ast.CallExpr) bool {
	for _, arg := range call.Args {
		if t := info.TypeOf(arg); t != nil {
			if _, ok := t.Underlying().(*types.Chan); ok {
				return true
			}
		}
	}
	return false
}
