package vdlint

import (
	"bufio"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"io/fs"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// UnitKind distinguishes the three type-check units a directory can
// produce, mirroring the go tool's build units.
type UnitKind int

const (
	// UnitPrimary is the importable package: the non-test files. Every
	// cross-package import resolves to a primary unit, so type identity
	// is consistent across the whole program.
	UnitPrimary UnitKind = iota
	// UnitTestAugmented re-checks the primary files together with the
	// in-package _test.go files, the way `go test` compiles the package
	// under test. It is never imported by other units.
	UnitTestAugmented
	// UnitExternalTest is the external test package (package foo_test).
	// Its import of the package under test resolves to the primary unit;
	// the export_test.go idiom (external tests reaching symbols declared
	// in in-package test files) is not supported and surfaces as a type
	// error.
	UnitExternalTest
)

// String implements fmt.Stringer.
func (k UnitKind) String() string {
	switch k {
	case UnitPrimary:
		return "primary"
	case UnitTestAugmented:
		return "test"
	case UnitExternalTest:
		return "external-test"
	default:
		return fmt.Sprintf("UnitKind(%d)", int(k))
	}
}

// Package is one type-check unit of the loaded module.
type Package struct {
	// Path is the unit's import path; external test units append "_test".
	Path string
	// Dir is the directory relative to the module root ("." for the root).
	Dir string
	// Name is the package name declared by the unit's files.
	Name string
	// Kind says which of the directory's units this is.
	Kind UnitKind
	// Files holds every parsed file of the unit in file-name order. A
	// test-augmented unit repeats the primary files.
	Files []*ast.File
	// Owned holds the files this unit is responsible for reporting on:
	// all files for primary and external units, only the in-package test
	// files for the augmented unit (its primary files are owned by the
	// primary unit, so diagnostics are never duplicated).
	Owned []*ast.File
	// Types and TypesInfo are filled by the driver's type-check phase.
	Types     *types.Package
	TypesInfo *types.Info

	imports []string   // unique import paths of Files
	deps    []*Package // module-internal units this unit waits for
	level   int        // 0-based topological level
}

// IsTest reports whether the unit carries test files.
func (p *Package) IsTest() bool { return p.Kind != UnitPrimary }

// Program is the loaded module: every unit, sharing one FileSet.
type Program struct {
	// ModulePath is the module path from go.mod.
	ModulePath string
	// Root is the absolute module root directory.
	Root string
	// Fset resolves token positions for all files.
	Fset *token.FileSet
	// Packages lists the units sorted by (Path, Kind).
	Packages []*Package

	levels  [][]*Package
	byPath  map[string]*Package // primary units by import path
	exports map[string]string   // import path → export data file (gc mode)
	source  bool                // use the go/importer source importer

	impMu    sync.Mutex // guards ext during concurrent type-checks
	ext      types.Importer
	typed    bool
	typateMu sync.Mutex
}

// LoadOptions configures Load.
type LoadOptions struct {
	// Importer selects how non-module imports are resolved:
	//
	//	"auto"   (default) gc export data via `go list -export`, falling
	//	         back to the source importer when the go tool is absent
	//	"gclist" gc export data only; Load fails if `go list` does
	//	"source" the pure go/importer source importer (no subprocess,
	//	         but re-type-checks the stdlib from source every run)
	Importer string
	// Exports supplies a pre-computed export-data table (import path →
	// file), bypassing the `go list` subprocess. Tests use this to share
	// one table across many fixture loads.
	Exports map[string]string
}

// Load parses and splits the module rooted at dir with default options.
func Load(dir string) (*Program, error) { return LoadWith(dir, LoadOptions{}) }

// LoadWith parses every buildable .go file of the module rooted at dir,
// splits each directory into its type-check units (primary,
// test-augmented, external test), resolves the module-internal import
// graph and computes the dependency levels the driver schedules over.
// Type-checking itself happens lazily in Run, under the driver's worker
// budget.
func LoadWith(dir string, opts LoadOptions) (*Program, error) {
	root, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	prog := &Program{ModulePath: modPath, Root: root, Fset: token.NewFileSet()}

	type dirState struct {
		rel   string
		files map[string][]*ast.File // package name → files
	}
	dirs := map[string]*dirState{}
	err = filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		// Skip files excluded by build constraints (//go:build lines and
		// GOOS/GOARCH file suffixes) under the default build context, the
		// same view an unraced `go build` has. This is what keeps
		// mutually exclusive files like race_enabled_test.go /
		// race_disabled_test.go from colliding in one unit.
		if ok, err := build.Default.MatchFile(filepath.Dir(path), d.Name()); err != nil || !ok {
			return err
		}
		file, err := parser.ParseFile(prog.Fset, path, nil, parser.ParseComments)
		if err != nil {
			return fmt.Errorf("vdlint: parse %s: %w", path, err)
		}
		rel, err := filepath.Rel(root, filepath.Dir(path))
		if err != nil {
			return err
		}
		rel = filepath.ToSlash(rel)
		ds, ok := dirs[rel]
		if !ok {
			ds = &dirState{rel: rel, files: map[string][]*ast.File{}}
			dirs[rel] = ds
		}
		name := file.Name.Name
		ds.files[name] = append(ds.files[name], file)
		return nil
	})
	if err != nil {
		return nil, err
	}

	prog.byPath = map[string]*Package{}
	for _, ds := range dirs {
		units, err := prog.splitUnits(ds.rel, ds.files)
		if err != nil {
			return nil, err
		}
		prog.Packages = append(prog.Packages, units...)
	}
	sort.Slice(prog.Packages, func(i, j int) bool {
		a, b := prog.Packages[i], prog.Packages[j]
		if a.Path != b.Path {
			return a.Path < b.Path
		}
		return a.Kind < b.Kind
	})
	if err := prog.resolveDeps(); err != nil {
		return nil, err
	}
	if err := prog.layer(); err != nil {
		return nil, err
	}
	if err := prog.initImporter(opts); err != nil {
		return nil, err
	}
	return prog, nil
}

// splitUnits turns one directory's files, grouped by declared package
// name, into type-check units.
func (prog *Program) splitUnits(rel string, byName map[string][]*ast.File) ([]*Package, error) {
	pkgPath := prog.ModulePath
	if rel != "." {
		pkgPath = prog.ModulePath + "/" + rel
	}
	// The primary name is the one declared by a non-test file; a
	// test-only directory falls back to the name with "_test" trimmed.
	primary := ""
	for name, files := range byName {
		for _, f := range files {
			if !prog.isTestFilename(f) {
				if primary != "" && primary != name {
					return nil, fmt.Errorf("vdlint: %s: multiple non-test packages %s and %s", rel, primary, name)
				}
				primary = name
			}
		}
	}
	if primary == "" {
		for name := range byName {
			primary = strings.TrimSuffix(name, "_test")
		}
	}
	var primaryFiles, inPkgTest, external []*ast.File
	for name, files := range byName {
		for _, f := range files {
			switch {
			case name == primary && !prog.isTestFilename(f):
				primaryFiles = append(primaryFiles, f)
			case name == primary:
				inPkgTest = append(inPkgTest, f)
			case name == primary+"_test" && prog.isTestFilename(f):
				external = append(external, f)
			default:
				return nil, fmt.Errorf("vdlint: %s: file %s declares package %s, want %s or %s_test",
					rel, filepath.Base(prog.filename(f)), name, primary, primary)
			}
		}
	}
	sortFiles := func(files []*ast.File) {
		sort.Slice(files, func(i, j int) bool { return prog.filename(files[i]) < prog.filename(files[j]) })
	}
	sortFiles(primaryFiles)
	sortFiles(inPkgTest)
	sortFiles(external)

	var units []*Package
	if len(primaryFiles) > 0 {
		u := &Package{Path: pkgPath, Dir: rel, Name: primary, Kind: UnitPrimary,
			Files: primaryFiles, Owned: primaryFiles}
		prog.byPath[pkgPath] = u
		units = append(units, u)
	}
	if len(inPkgTest) > 0 {
		all := append(append([]*ast.File{}, primaryFiles...), inPkgTest...)
		units = append(units, &Package{Path: pkgPath, Dir: rel, Name: primary, Kind: UnitTestAugmented,
			Files: all, Owned: inPkgTest})
	}
	if len(external) > 0 {
		units = append(units, &Package{Path: pkgPath + "_test", Dir: rel, Name: primary + "_test", Kind: UnitExternalTest,
			Files: external, Owned: external})
	}
	for _, u := range units {
		u.imports = collectImports(u.Files)
	}
	return units, nil
}

// collectImports returns the unique, sorted import paths of the files.
func collectImports(files []*ast.File) []string {
	seen := map[string]bool{}
	for _, f := range files {
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if path != "" && path != "C" {
				seen[path] = true
			}
		}
	}
	out := make([]string, 0, len(seen))
	for p := range seen {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// resolveDeps wires every unit's module-internal imports to primary
// units and rejects the one shape this loader cannot type-check: an
// in-package test file importing a package that transitively imports the
// package under test (the go tool handles that by rebuilding the
// intermediate packages against the augmented unit; we do not).
func (prog *Program) resolveDeps() error {
	for _, u := range prog.Packages {
		for _, imp := range u.imports {
			if !prog.isModulePath(imp) {
				continue
			}
			dep, ok := prog.byPath[imp]
			if !ok {
				return fmt.Errorf("vdlint: %s (%s) imports %s, which has no buildable files", u.Path, u.Kind, imp)
			}
			u.deps = append(u.deps, dep)
		}
	}
	// Diamond check runs after every unit's deps are wired — reaches
	// walks dep edges that a single pass would not have filled in yet.
	for _, u := range prog.Packages {
		if u.Kind != UnitTestAugmented {
			continue
		}
		for _, dep := range u.deps {
			if dep.Path != u.Path && prog.reaches(dep, u.Path) {
				return fmt.Errorf(
					"vdlint: in-package tests of %s import %s, which imports %s back; move those tests to an external _test package",
					u.Path, dep.Path, u.Path)
			}
		}
	}
	return nil
}

// reaches reports whether from's transitive module-internal imports
// include target.
func (prog *Program) reaches(from *Package, target string) bool {
	seen := map[*Package]bool{}
	var walk func(u *Package) bool
	walk = func(u *Package) bool {
		if u.Path == target {
			return true
		}
		if seen[u] {
			return false
		}
		seen[u] = true
		for _, d := range u.deps {
			if walk(d) {
				return true
			}
		}
		return false
	}
	return walk(from)
}

// layer assigns each unit its longest-path dependency level and groups
// the units into levels the driver runs in order.
func (prog *Program) layer() error {
	const (
		unvisited = 0
		visiting  = 1
		done      = 2
	)
	state := map[*Package]int{}
	var visit func(u *Package) error
	visit = func(u *Package) error {
		switch state[u] {
		case done:
			return nil
		case visiting:
			return fmt.Errorf("vdlint: import cycle through %s", u.Path)
		}
		state[u] = visiting
		u.level = 0
		for _, d := range u.deps {
			if err := visit(d); err != nil {
				return err
			}
			if d.level+1 > u.level {
				u.level = d.level + 1
			}
		}
		state[u] = done
		return nil
	}
	maxLevel := 0
	for _, u := range prog.Packages {
		if err := visit(u); err != nil {
			return err
		}
		if u.level > maxLevel {
			maxLevel = u.level
		}
	}
	prog.levels = make([][]*Package, maxLevel+1)
	for _, u := range prog.Packages { // Packages is sorted; levels inherit the order
		prog.levels[u.level] = append(prog.levels[u.level], u)
	}
	return nil
}

// isModulePath reports whether the import path lies inside the module.
func (prog *Program) isModulePath(path string) bool {
	return path == prog.ModulePath || strings.HasPrefix(path, prog.ModulePath+"/")
}

// filename returns the file's name on disk.
func (prog *Program) filename(f *ast.File) string {
	return prog.Fset.Position(f.Package).Filename
}

// isTestFilename reports whether the file's name ends in _test.go.
func (prog *Program) isTestFilename(f *ast.File) bool {
	return strings.HasSuffix(prog.filename(f), "_test.go")
}

// initImporter selects and prepares the strategy for resolving imports
// from outside the module.
func (prog *Program) initImporter(opts LoadOptions) error {
	mode := opts.Importer
	if mode == "" {
		mode = "auto"
	}
	switch mode {
	case "source":
		prog.source = true
		return nil
	case "auto", "gclist":
		if opts.Exports != nil {
			prog.exports = opts.Exports
			return nil
		}
		exports, err := GoListExports(prog.Root)
		if err != nil {
			if mode == "gclist" {
				return err
			}
			prog.source = true // auto: no go tool → pure source importing
			return nil
		}
		prog.exports = exports
		return nil
	default:
		return fmt.Errorf("vdlint: unknown importer mode %q (want auto, gclist or source)", mode)
	}
}

// GoListExports builds the import-path → export-data-file table for the
// module rooted at dir by asking the go tool, including test-only
// dependencies. The table covers everything the module imports from
// outside itself; reading export data is orders of magnitude faster than
// re-type-checking the standard library from source on every run.
func GoListExports(dir string) (map[string]string, error) {
	cmd := exec.Command("go", "list", "-export", "-deps", "-test",
		"-f", "{{if .Export}}{{.ImportPath}}={{.Export}}{{end}}", "./...")
	cmd.Dir = dir
	out, err := cmd.Output()
	if err != nil {
		msg := err.Error()
		if ee, ok := err.(*exec.ExitError); ok && len(ee.Stderr) > 0 {
			msg = strings.TrimSpace(string(ee.Stderr))
		}
		return nil, fmt.Errorf("vdlint: go list -export: %s", msg)
	}
	exports := map[string]string{}
	sc := bufio.NewScanner(strings.NewReader(string(out)))
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		i := strings.LastIndex(line, "=")
		if i <= 0 {
			continue
		}
		path, file := line[:i], line[i+1:]
		if strings.Contains(path, " ") {
			continue // test-variant pseudo-packages of the module itself
		}
		exports[path] = file
	}
	return exports, nil
}

// importPath resolves one import for the unit being type-checked.
// Module-internal paths resolve to already-checked primary units;
// everything else goes through the shared external importer.
func (prog *Program) importPath(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if prog.isModulePath(path) {
		dep, ok := prog.byPath[path]
		if !ok {
			return nil, fmt.Errorf("no package %s in module", path)
		}
		if dep.Types == nil {
			return nil, fmt.Errorf("package %s not type-checked yet (scheduling bug)", path)
		}
		return dep.Types, nil
	}
	prog.impMu.Lock()
	defer prog.impMu.Unlock()
	if prog.ext == nil {
		if prog.source {
			prog.ext = importer.ForCompiler(prog.Fset, "source", nil)
		} else {
			prog.ext = importer.ForCompiler(prog.Fset, "gc", func(path string) (io.ReadCloser, error) {
				file, ok := prog.exports[path]
				if !ok {
					return nil, fmt.Errorf("no export data for %s (stale build cache? re-run go build ./... or use the source importer)", path)
				}
				return os.Open(file)
			})
		}
	}
	return prog.ext.Import(path)
}

// unitImporter adapts a Program to types.Importer for one unit check.
type unitImporter struct{ prog *Program }

func (ui unitImporter) Import(path string) (*types.Package, error) {
	return ui.prog.importPath(path)
}

// check type-checks one unit. Its module-internal dependencies must have
// completed; the driver's level ordering guarantees that.
func (prog *Program) check(u *Package) error {
	var firstErr error
	conf := types.Config{
		Importer: unitImporter{prog},
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	pkg, err := conf.Check(u.Path, prog.Fset, u.Files, info)
	if firstErr != nil {
		return fmt.Errorf("vdlint: typecheck %s (%s): %w", u.Path, u.Kind, firstErr)
	}
	if err != nil {
		return fmt.Errorf("vdlint: typecheck %s (%s): %w", u.Path, u.Kind, err)
	}
	u.Types = pkg
	u.TypesInfo = info
	return nil
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("vdlint: %w", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("vdlint: no module line in %s", gomod)
}
