package vdlint

import (
	"go/ast"
	"go/types"
	"strings"
)

// All returns the module's analyzer suite in the order cmd/vdlint runs
// it.
func All() []*Analyzer {
	return []*Analyzer{
		ToolWired, RandImport, NoDefaultMux, CtxFirst, CompiledExec,
		DetRand, CtxFlow, LockCopy, LeakyGo, JudgeSync,
	}
}

// ToolWired checks that every exported New* constructor in
// internal/detectors that returns a Tool is actually exercised — called
// from StandardSuite or from some test file. An unwired constructor is a
// detector the benchmark silently stopped measuring.
var ToolWired = &Analyzer{
	Name:   "toolwired",
	Doc:    "exported Tool constructors in internal/detectors must be exercised by StandardSuite or a test",
	Run:    runToolWired,
	Finish: finishToolWired,
}

// toolWiredResult is one unit's contribution: the constructors it
// defines (detectors primary only) and the call names its test files (or
// StandardSuite) make.
type toolWiredResult struct {
	ctors  []Finding // position + constructor name in Message
	called map[string]bool
}

func runToolWired(pass *Pass) {
	res := toolWiredResult{called: map[string]bool{}}
	collect := func(n ast.Node) {
		ast.Inspect(n, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch fun := call.Fun.(type) {
			case *ast.Ident:
				res.called[fun.Name] = true
			case *ast.SelectorExpr:
				res.called[fun.Sel.Name] = true
			}
			return true
		})
	}
	for _, file := range pass.Pkg.Owned {
		if pass.IsTestFile(file) {
			collect(file)
		}
	}
	if pass.Pkg.Kind == UnitPrimary && pass.Pkg.Path == pass.Prog.ModulePath+"/internal/detectors" {
		for _, file := range pass.Pkg.Files {
			for _, d := range file.Decls {
				fn, ok := d.(*ast.FuncDecl)
				if !ok {
					continue
				}
				if fn.Name.Name == "StandardSuite" && fn.Body != nil {
					collect(fn.Body)
				}
				if fn.Recv == nil && fn.Name.IsExported() && strings.HasPrefix(fn.Name.Name, "New") &&
					returnsTool(pass, fn) {
					res.ctors = append(res.ctors, Finding{Pos: fn.Name.Pos(), Message: fn.Name.Name})
				}
			}
		}
	}
	pass.SetResult(res)
}

func finishToolWired(fp *FinishPass) {
	called := map[string]bool{}
	var ctors []Finding
	for _, u := range fp.Prog.Packages {
		res, ok := fp.Result(u).(toolWiredResult)
		if !ok {
			continue
		}
		for name := range res.called {
			called[name] = true
		}
		ctors = append(ctors, res.ctors...)
	}
	for _, c := range ctors {
		if !called[c.Message] {
			fp.Reportf(c.Pos, "constructor %s returns a Tool but is never exercised by StandardSuite or a test", c.Message)
		}
	}
}

// returnsTool reports whether fn's result list mentions the detectors
// Tool type, resolved through type information.
func returnsTool(pass *Pass, fn *ast.FuncDecl) bool {
	if fn.Type.Results == nil {
		return false
	}
	for _, field := range fn.Type.Results.List {
		t := pass.Pkg.TypesInfo.TypeOf(field.Type)
		for {
			switch tt := t.(type) {
			case *types.Pointer:
				t = tt.Elem()
				continue
			case *types.Slice:
				t = tt.Elem()
				continue
			}
			break
		}
		if named, ok := t.(*types.Named); ok && named.Obj().Name() == "Tool" &&
			named.Obj().Pkg() == pass.Pkg.Types {
			return true
		}
	}
	return false
}

// RandImport checks that no package outside internal/stats imports
// math/rand (v1 or v2). All randomness in the module must flow through
// the seedable, splittable stats.RNG so campaigns stay reproducible;
// a stray global-state rand import silently breaks determinism.
var RandImport = &Analyzer{
	Name: "randimport",
	Doc:  "only internal/stats may import math/rand; everything else must use stats.RNG",
	Run:  runRandImport,
}

func runRandImport(pass *Pass) {
	pkgPath := strings.TrimSuffix(pass.Pkg.Path, "_test")
	if pkgPath == pass.Prog.ModulePath+"/internal/stats" {
		return
	}
	for _, file := range pass.Pkg.Owned {
		for _, imp := range file.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if path == "math/rand" || path == "math/rand/v2" {
				pass.Reportf(imp.Path.Pos(),
					"package %s imports %s; use internal/stats.RNG for reproducible randomness", pkgPath, path)
			}
		}
	}
}

// NoDefaultMux checks that no non-test code routes through the global
// http.DefaultServeMux: no http.Handle/http.HandleFunc, no direct
// DefaultServeMux references, and no http.ListenAndServe(TLS) with a nil
// handler. The serving layer must build explicit *http.ServeMux values
// (as internal/service does) so handlers stay testable and no package
// can mutate another's routing via global state.
var NoDefaultMux = &Analyzer{
	Name: "nodefaultmux",
	Doc:  "non-test code must not use http.DefaultServeMux (http.Handle/HandleFunc, nil-handler ListenAndServe)",
	Run:  runNoDefaultMux,
}

func runNoDefaultMux(pass *Pass) {
	if pass.Pkg.Kind != UnitPrimary {
		return
	}
	info := pass.Pkg.TypesInfo
	for _, file := range pass.Pkg.Owned {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				sel, ok := n.Fun.(*ast.SelectorExpr)
				if !ok || !isPkgFunc(info, sel, "net/http", "ListenAndServe", "ListenAndServeTLS") {
					return true
				}
				name := sel.Sel.Name
				if (name == "ListenAndServe" && len(n.Args) == 2 && isNil(n.Args[1])) ||
					(name == "ListenAndServeTLS" && len(n.Args) == 4 && isNil(n.Args[3])) {
					pass.Reportf(n.Pos(),
						"http.%s with a nil handler serves http.DefaultServeMux; pass an explicit *http.ServeMux", name)
				}
			case *ast.SelectorExpr:
				obj := info.Uses[n.Sel]
				if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "net/http" {
					return true
				}
				switch n.Sel.Name {
				case "DefaultServeMux":
					pass.Reportf(n.Pos(), "use of http.DefaultServeMux; construct a mux with http.NewServeMux")
				case "Handle", "HandleFunc":
					// Only the package-level functions register on the
					// default mux; (*ServeMux).Handle is the fix.
					if _, isFunc := obj.(*types.Func); isFunc && obj.(*types.Func).Type().(*types.Signature).Recv() == nil {
						pass.Reportf(n.Pos(),
							"http.%s registers on http.DefaultServeMux; register on an explicit *http.ServeMux", n.Sel.Name)
					}
				}
			}
			return true
		})
	}
}

// CtxFirst checks the module's context-first convention in the packages
// that form the execution pipeline: an exported function (or method) in
// internal/harness, internal/experiments or internal/service that
// accepts a context.Context must take it as the first parameter, the
// standard library shape every caller expects. A buried context is
// almost always a retrofitted signature that the next refactor will get
// wrong.
var CtxFirst = &Analyzer{
	Name: "ctxfirst",
	Doc:  "exported functions in internal/harness, internal/experiments, internal/service and internal/dist must take context.Context first",
	Run:  runCtxFirst,
}

// ctxFirstPackages lists the module-relative package paths the
// context-first convention is enforced in.
var ctxFirstPackages = []string{
	"internal/harness",
	"internal/experiments",
	"internal/service",
	"internal/dist",
}

func runCtxFirst(pass *Pass) {
	if pass.Pkg.Kind != UnitPrimary || !inPackageSet(pass, ctxFirstPackages) {
		return
	}
	info := pass.Pkg.TypesInfo
	for _, file := range pass.Pkg.Owned {
		for _, d := range file.Decls {
			fn, ok := d.(*ast.FuncDecl)
			if !ok || !fn.Name.IsExported() || fn.Type.Params == nil {
				continue
			}
			// Walk the flattened parameter slots; only the first context
			// parameter matters — at slot zero the signature is
			// compliant.
			slot := 0
			for _, field := range fn.Type.Params.List {
				names := len(field.Names)
				if names == 0 {
					names = 1
				}
				if isContextType(info.TypeOf(field.Type)) {
					if slot != 0 {
						pass.Reportf(field.Pos(),
							"exported %s takes context.Context as parameter %d; contexts go first", fn.Name.Name, slot+1)
					}
					break
				}
				slot += names
			}
		}
	}
}

// CompiledExec checks that the execution-path packages — the ones that
// run svclang services inside campaigns and experiments — execute
// through the compiled engine (compile.Engine's Execute,
// ExecuteInSession, Observe, Analyze) rather than the raw tree-walking
// entry points of package svclang. A raw svclang.Execute in a detector
// or the harness silently bypasses the shared program cache and the
// arena pool, costing a compile per probe; the engine's interpret mode
// exists for the cases that genuinely need the reference interpreter.
// Tests are exempt (the differential suites exist to call both).
var CompiledExec = &Analyzer{
	Name: "compiledexec",
	Doc:  "execution-path packages must run services through compile.Engine, not raw svclang.Execute/Analyze",
	Run:  runCompiledExec,
}

// execPathPackages lists the module-relative package paths whose
// non-test code must execute services through the compiled engine.
// internal/svclang and internal/svclang/compile themselves are the
// implementations and are naturally absent.
var execPathPackages = []string{
	"internal/detectors",
	"internal/workload",
	"internal/harness",
	"internal/experiments",
}

// rawExecFuncs are the interpreter-path entry points of package svclang.
var rawExecFuncs = map[string]bool{
	"Execute": true, "ExecuteInSession": true,
	"Analyze": true, "AnalyzeWith": true,
	"AnalyzeProbing": true, "AnalyzeProbingExhaustive": true,
}

func runCompiledExec(pass *Pass) {
	if pass.Pkg.Kind != UnitPrimary || !inPackageSet(pass, execPathPackages) {
		return
	}
	svclangPath := pass.Prog.ModulePath + "/internal/svclang"
	for _, file := range pass.Pkg.Owned {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := staticCallee(pass.Pkg.TypesInfo, call)
			if callee == nil || callee.Pkg() == nil {
				return true
			}
			if callee.Pkg().Path() == svclangPath && callee.Type().(*types.Signature).Recv() == nil &&
				rawExecFuncs[callee.Name()] {
				pass.Reportf(call.Pos(),
					"package %s calls svclang.%s directly; execute through compile.Engine so programs compile once and arenas pool",
					pass.Pkg.Path, callee.Name())
			}
			return true
		})
	}
}

// inPackageSet reports whether the pass's unit is one of the given
// module-relative package paths.
func inPackageSet(pass *Pass, rels []string) bool {
	for _, rel := range rels {
		if pass.Pkg.Path == pass.Prog.ModulePath+"/"+rel {
			return true
		}
	}
	return false
}

// isPkgFunc reports whether sel resolves to one of the named
// package-level functions of the given import path.
func isPkgFunc(info *types.Info, sel *ast.SelectorExpr, pkgPath string, names ...string) bool {
	obj, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || obj.Pkg() == nil || obj.Pkg().Path() != pkgPath {
		return false
	}
	if obj.Type().(*types.Signature).Recv() != nil {
		return false
	}
	for _, n := range names {
		if obj.Name() == n {
			return true
		}
	}
	return false
}

// staticCallee resolves a call expression to the function or method it
// statically invokes. Calls through interfaces, function values,
// builtins and conversions return nil: without a points-to analysis
// their target is unknown, and the analyzers here stay conservative.
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		obj = info.Uses[fun.Sel]
	default:
		return nil
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		return nil
	}
	if recv := fn.Type().(*types.Signature).Recv(); recv != nil && types.IsInterface(recv.Type()) {
		return nil
	}
	return fn
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() != nil &&
		named.Obj().Pkg().Path() == "context" && named.Obj().Name() == "Context"
}

// isNil reports whether e is the predeclared nil identifier.
func isNil(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

// funcDisplayName renders a function or method name for messages.
func funcDisplayName(fn *types.Func) string {
	if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
		t := recv.Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			return named.Obj().Name() + "." + fn.Name()
		}
	}
	if fn.Pkg() != nil {
		if i := strings.LastIndex(fn.Pkg().Path(), "/"); i >= 0 {
			return fn.Pkg().Path()[i+1:] + "." + fn.Name()
		}
		return fn.Pkg().Path() + "." + fn.Name()
	}
	return fn.Name()
}
