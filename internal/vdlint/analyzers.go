package vdlint

import (
	"fmt"
	"go/ast"
	"strings"
)

// All returns the module's analyzer suite in the order cmd/vdlint runs
// it.
func All() []*Analyzer {
	return []*Analyzer{ToolWired, RandImport, NoDefaultMux, NoRawRand, CtxFirst, CompiledExec}
}

// ToolWired checks that every exported New* constructor in
// internal/detectors that returns a Tool is actually exercised — called
// from StandardSuite or from some test file. An unwired constructor is a
// detector the benchmark silently stopped measuring.
var ToolWired = &Analyzer{
	Name: "toolwired",
	Doc:  "exported Tool constructors in internal/detectors must be exercised by StandardSuite or a test",
	Run:  runToolWired,
}

func runToolWired(prog *Program) []Finding {
	var detectors *Package
	for _, pkg := range prog.Packages {
		if pkg.Path == prog.ModulePath+"/internal/detectors" {
			detectors = pkg
		}
	}
	if detectors == nil {
		return nil
	}

	// Collect the exported New* constructors whose results include Tool.
	type ctor struct {
		name string
		decl *ast.FuncDecl
	}
	var ctors []ctor
	for _, file := range detectors.Files {
		if isTestFile(prog, file) {
			continue
		}
		for _, d := range file.Decls {
			fn, ok := d.(*ast.FuncDecl)
			if !ok || fn.Recv != nil || !fn.Name.IsExported() || !strings.HasPrefix(fn.Name.Name, "New") {
				continue
			}
			if returnsTool(fn) {
				ctors = append(ctors, ctor{name: fn.Name.Name, decl: fn})
			}
		}
	}

	// Collect the names called from the places that count as "exercised":
	// the bodies of test files anywhere in the module, and StandardSuite
	// itself.
	called := map[string]bool{}
	collect := func(n ast.Node) {
		ast.Inspect(n, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch fun := call.Fun.(type) {
			case *ast.Ident:
				called[fun.Name] = true
			case *ast.SelectorExpr:
				called[fun.Sel.Name] = true
			}
			return true
		})
	}
	for _, pkg := range prog.Packages {
		for _, file := range pkg.Files {
			if isTestFile(prog, file) {
				collect(file)
			}
		}
	}
	for _, file := range detectors.Files {
		for _, d := range file.Decls {
			if fn, ok := d.(*ast.FuncDecl); ok && fn.Name.Name == "StandardSuite" && fn.Body != nil {
				collect(fn.Body)
			}
		}
	}

	var out []Finding
	for _, c := range ctors {
		if !called[c.name] {
			out = append(out, Finding{
				Pos: c.decl.Name.Pos(),
				Message: fmt.Sprintf(
					"constructor %s returns a Tool but is never exercised by StandardSuite or a test", c.name),
			})
		}
	}
	return out
}

// returnsTool reports whether fn's result list mentions the Tool type
// (bare Tool within the package, or detectors.Tool from outside).
func returnsTool(fn *ast.FuncDecl) bool {
	if fn.Type.Results == nil {
		return false
	}
	for _, field := range fn.Type.Results.List {
		switch t := field.Type.(type) {
		case *ast.Ident:
			if t.Name == "Tool" {
				return true
			}
		case *ast.SelectorExpr:
			if t.Sel.Name == "Tool" {
				return true
			}
		}
	}
	return false
}

// RandImport checks that no package outside internal/stats imports
// math/rand (v1 or v2). All randomness in the module must flow through
// the seedable, splittable stats.RNG so campaigns stay reproducible;
// a stray global-state rand import silently breaks determinism.
var RandImport = &Analyzer{
	Name: "randimport",
	Doc:  "only internal/stats may import math/rand; everything else must use stats.RNG",
	Run:  runRandImport,
}

func runRandImport(prog *Program) []Finding {
	var out []Finding
	for _, pkg := range prog.Packages {
		if pkg.Path == prog.ModulePath+"/internal/stats" {
			continue
		}
		for _, file := range pkg.Files {
			for _, imp := range file.Imports {
				path := strings.Trim(imp.Path.Value, `"`)
				if path == "math/rand" || path == "math/rand/v2" {
					out = append(out, Finding{
						Pos: imp.Path.Pos(),
						Message: fmt.Sprintf(
							"package %s imports %s; use internal/stats.RNG for reproducible randomness", pkg.Path, path),
					})
				}
			}
		}
	}
	return out
}

// NoDefaultMux checks that no non-test code routes through the global
// http.DefaultServeMux: no http.Handle/http.HandleFunc, no direct
// DefaultServeMux references, and no http.ListenAndServe(TLS) with a nil
// handler. The serving layer must build explicit *http.ServeMux values
// (as internal/service does) so handlers stay testable and no package
// can mutate another's routing via global state.
var NoDefaultMux = &Analyzer{
	Name: "nodefaultmux",
	Doc:  "non-test code must not use http.DefaultServeMux (http.Handle/HandleFunc, nil-handler ListenAndServe)",
	Run:  runNoDefaultMux,
}

func runNoDefaultMux(prog *Program) []Finding {
	var out []Finding
	for _, pkg := range prog.Packages {
		for _, file := range pkg.Files {
			if isTestFile(prog, file) {
				continue
			}
			httpName := importName(file, "net/http")
			if httpName == "" {
				continue
			}
			ast.Inspect(file, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CallExpr:
					sel, ok := n.Fun.(*ast.SelectorExpr)
					if !ok || !isPkgIdent(sel.X, httpName) {
						return true
					}
					name := sel.Sel.Name
					if (name == "ListenAndServe" && len(n.Args) == 2 && isNil(n.Args[1])) ||
						(name == "ListenAndServeTLS" && len(n.Args) == 4 && isNil(n.Args[3])) {
						out = append(out, Finding{
							Pos:     n.Pos(),
							Message: fmt.Sprintf("http.%s with a nil handler serves http.DefaultServeMux; pass an explicit *http.ServeMux", name),
						})
					}
				case *ast.SelectorExpr:
					if !isPkgIdent(n.X, httpName) {
						return true
					}
					switch n.Sel.Name {
					case "DefaultServeMux":
						out = append(out, Finding{
							Pos:     n.Pos(),
							Message: "use of http.DefaultServeMux; construct a mux with http.NewServeMux",
						})
					case "Handle", "HandleFunc":
						out = append(out, Finding{
							Pos:     n.Pos(),
							Message: fmt.Sprintf("http.%s registers on http.DefaultServeMux; register on an explicit *http.ServeMux", n.Sel.Name),
						})
					}
				}
				return true
			})
		}
	}
	return out
}

// NoRawRand checks that the deterministic packages — the ones whose
// outputs must be byte-identical across runs and worker counts — use
// neither math/rand (global, unseedable from a campaign seed) nor the
// wall clock. A time.Now in a resampling loop or a stray rand call is a
// nondeterminism leak that the cross-worker equality tests can only catch
// after the fact; this analyzer catches it at lint time. Timing belongs
// in the serving layer (internal/service), which is free to use the
// clock.
var NoRawRand = &Analyzer{
	Name: "norawrand",
	Doc:  "deterministic packages (stats, metricprop, experiments, harness, workpool) must not use math/rand or the wall clock",
	Run:  runNoRawRand,
}

// deterministicPackages lists the module-relative package paths whose
// non-test code must be a pure function of explicit seeds and inputs.
var deterministicPackages = []string{
	"internal/stats",
	"internal/metricprop",
	"internal/experiments",
	"internal/harness",
	"internal/workpool",
}

// wallClockFuncs are the time-package functions that read or wait on the
// wall clock. Pure value constructors (time.Duration arithmetic,
// time.Unix) are fine.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true,
	"Sleep": true, "Tick": true, "After": true, "AfterFunc": true,
	"NewTimer": true, "NewTicker": true,
}

func runNoRawRand(prog *Program) []Finding {
	deterministic := map[string]bool{}
	for _, rel := range deterministicPackages {
		deterministic[prog.ModulePath+"/"+rel] = true
	}
	var out []Finding
	for _, pkg := range prog.Packages {
		if !deterministic[pkg.Path] {
			continue
		}
		for _, file := range pkg.Files {
			if isTestFile(prog, file) {
				continue
			}
			for _, imp := range file.Imports {
				path := strings.Trim(imp.Path.Value, `"`)
				if path == "math/rand" || path == "math/rand/v2" {
					out = append(out, Finding{
						Pos: imp.Path.Pos(),
						Message: fmt.Sprintf(
							"deterministic package %s imports %s; use the seedable stats.RNG", pkg.Path, path),
					})
				}
			}
			timeName := importName(file, "time")
			if timeName == "" {
				continue
			}
			ast.Inspect(file, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok || !isPkgIdent(sel.X, timeName) || !wallClockFuncs[sel.Sel.Name] {
					return true
				}
				out = append(out, Finding{
					Pos: sel.Pos(),
					Message: fmt.Sprintf(
						"deterministic package %s reads the wall clock (time.%s); keep timing in the serving layer", pkg.Path, sel.Sel.Name),
				})
				return true
			})
		}
	}
	return out
}

// CtxFirst checks the module's context-first convention in the packages
// that form the execution pipeline: an exported function (or method) in
// internal/harness, internal/experiments or internal/service that
// accepts a context.Context must take it as the first parameter, the
// standard library shape every caller expects. A buried context is
// almost always a retrofitted signature that the next refactor will get
// wrong.
var CtxFirst = &Analyzer{
	Name: "ctxfirst",
	Doc:  "exported functions in internal/harness, internal/experiments and internal/service must take context.Context first",
	Run:  runCtxFirst,
}

// ctxFirstPackages lists the module-relative package paths the
// context-first convention is enforced in.
var ctxFirstPackages = []string{
	"internal/harness",
	"internal/experiments",
	"internal/service",
}

func runCtxFirst(prog *Program) []Finding {
	target := map[string]bool{}
	for _, rel := range ctxFirstPackages {
		target[prog.ModulePath+"/"+rel] = true
	}
	var out []Finding
	for _, pkg := range prog.Packages {
		if !target[pkg.Path] {
			continue
		}
		for _, file := range pkg.Files {
			if isTestFile(prog, file) {
				continue
			}
			ctxName := importName(file, "context")
			if ctxName == "" {
				continue
			}
			for _, d := range file.Decls {
				fn, ok := d.(*ast.FuncDecl)
				if !ok || !fn.Name.IsExported() || fn.Type.Params == nil {
					continue
				}
				// Walk the flattened parameter slots; only the first
				// context parameter matters — at slot zero the signature
				// is compliant.
				slot := 0
				for _, field := range fn.Type.Params.List {
					names := len(field.Names)
					if names == 0 {
						names = 1
					}
					if isContextType(field.Type, ctxName) {
						if slot != 0 {
							out = append(out, Finding{
								Pos: field.Pos(),
								Message: fmt.Sprintf(
									"exported %s takes context.Context as parameter %d; contexts go first", fn.Name.Name, slot+1),
							})
						}
						break
					}
					slot += names
				}
			}
		}
	}
	return out
}

// CompiledExec checks that the execution-path packages — the ones that
// run svclang services inside campaigns and experiments — execute
// through the compiled engine (compile.Engine's Execute,
// ExecuteInSession, Observe, Analyze) rather than the raw tree-walking
// entry points of package svclang. A raw svclang.Execute in a detector
// or the harness silently bypasses the shared program cache and the
// arena pool, costing a compile per probe; the engine's interpret mode
// exists for the cases that genuinely need the reference interpreter.
// Tests are exempt (the differential suites exist to call both).
var CompiledExec = &Analyzer{
	Name: "compiledexec",
	Doc:  "execution-path packages must run services through compile.Engine, not raw svclang.Execute/Analyze",
	Run:  runCompiledExec,
}

// execPathPackages lists the module-relative package paths whose
// non-test code must execute services through the compiled engine.
// internal/svclang and internal/svclang/compile themselves are the
// implementations and are naturally absent.
var execPathPackages = []string{
	"internal/detectors",
	"internal/workload",
	"internal/harness",
	"internal/experiments",
}

// rawExecFuncs are the interpreter-path entry points of package svclang.
var rawExecFuncs = map[string]bool{
	"Execute": true, "ExecuteInSession": true,
	"Analyze": true, "AnalyzeWith": true, "AnalyzeProbing": true,
}

func runCompiledExec(prog *Program) []Finding {
	target := map[string]bool{}
	for _, rel := range execPathPackages {
		target[prog.ModulePath+"/"+rel] = true
	}
	var out []Finding
	for _, pkg := range prog.Packages {
		if !target[pkg.Path] {
			continue
		}
		for _, file := range pkg.Files {
			if isTestFile(prog, file) {
				continue
			}
			svclangName := importName(file, prog.ModulePath+"/internal/svclang")
			if svclangName == "" {
				continue
			}
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok || !isPkgIdent(sel.X, svclangName) || !rawExecFuncs[sel.Sel.Name] {
					return true
				}
				out = append(out, Finding{
					Pos: call.Pos(),
					Message: fmt.Sprintf(
						"package %s calls svclang.%s directly; execute through compile.Engine so programs compile once and arenas pool", pkg.Path, sel.Sel.Name),
				})
				return true
			})
		}
	}
	return out
}

// isContextType reports whether e is the context.Context type under the
// file's local name for the context import.
func isContextType(e ast.Expr, ctxName string) bool {
	sel, ok := e.(*ast.SelectorExpr)
	return ok && isPkgIdent(sel.X, ctxName) && sel.Sel.Name == "Context"
}

// importName returns the local name the file binds the given import path
// to ("" when the path is not imported; dot imports are ignored — this
// mini-framework has no type information to resolve them).
func importName(file *ast.File, path string) string {
	for _, imp := range file.Imports {
		if strings.Trim(imp.Path.Value, `"`) != path {
			continue
		}
		if imp.Name != nil {
			if imp.Name.Name == "." || imp.Name.Name == "_" {
				return ""
			}
			return imp.Name.Name
		}
		base := path
		if i := strings.LastIndex(base, "/"); i >= 0 {
			base = base[i+1:]
		}
		return base
	}
	return ""
}

// isPkgIdent reports whether e is a bare identifier with the given name
// (the receiver shape of a package-qualified selector).
func isPkgIdent(e ast.Expr, name string) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == name
}

// isNil reports whether e is the predeclared nil identifier.
func isNil(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

// isTestFile reports whether the file's name ends in _test.go.
func isTestFile(prog *Program, file *ast.File) bool {
	return strings.HasSuffix(prog.Fset.Position(file.Package).Filename, "_test.go")
}
