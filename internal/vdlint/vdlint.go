// Package vdlint is a dependency-free, type-aware static-analysis
// framework for this module, in the style of go/analysis: a loader that
// parses the module into correct type-check units (load.go), a driver
// that type-checks and analyzes packages in dependency order over the
// shared workpool budget, an object-fact store so analyzers can reason
// across package boundaries, and //vdlint:ignore suppression with
// unused-suppression reporting. The toolchain's golang.org/x/tools
// multichecker is deliberately not used — the module is stdlib-only — so
// cmd/vdlint binds the repo-specific analyzers into a standalone checker.
package vdlint

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"io"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"github.com/dsn2015/vdbench/internal/workpool"
)

// Diagnostic is one finding, anchored to a source position. File paths
// are relative to the module root so output is stable across checkouts.
type Diagnostic struct {
	// Pos is the resolved, root-relative file position of the finding.
	Pos token.Position
	// Analyzer names the analyzer that produced the finding.
	Analyzer string
	// Message describes the finding.
	Message string
}

// String formats the diagnostic the way Go tools print findings.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Finding is an unresolved diagnostic: a token.Pos plus a message. The
// driver resolves positions against the program's FileSet.
type Finding struct {
	Pos     token.Pos
	Message string
}

// Analyzer is one check. Run is invoked once per type-check unit, in
// dependency order (a unit's module-internal imports are always analyzed
// first, so facts exported on their objects are visible). Finish, if
// set, runs once after every unit, for whole-program properties that
// need all per-package results.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics, suppression comments
	// and on the command line.
	Name string
	// Doc is a one-line description.
	Doc string
	// Run analyzes one unit. Report findings via pass.Reportf; stash
	// per-package data for Finish via pass.SetResult.
	Run func(pass *Pass)
	// Finish, optional, runs after all units and reports whole-program
	// findings.
	Finish func(fp *FinishPass)
}

// Pass carries one (analyzer, unit) invocation's state.
type Pass struct {
	// Prog is the loaded program.
	Prog *Program
	// Pkg is the unit under analysis, fully type-checked.
	Pkg *Package

	analyzer *Analyzer
	store    *factStore
	findings []Finding
	result   any
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.findings = append(p.findings, Finding{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// SetResult stashes a per-package value for the analyzer's Finish pass.
func (p *Pass) SetResult(v any) { p.result = v }

// ExportFact attaches a fact to obj for downstream units (and Finish) of
// the same analyzer. Facts are keyed by the object's stable full name,
// so an object re-checked in a test-augmented unit resolves to the same
// fact as its primary incarnation.
func (p *Pass) ExportFact(obj types.Object, fact any) { p.store.set(obj, fact) }

// LookupFact returns the fact exported for obj by this analyzer, if any.
func (p *Pass) LookupFact(obj types.Object) (any, bool) { return p.store.get(obj) }

// IsTestFile reports whether the file's name ends in _test.go.
func (p *Pass) IsTestFile(f *ast.File) bool { return p.Prog.isTestFilename(f) }

// FinishPass carries an analyzer's whole-program finish phase.
type FinishPass struct {
	// Prog is the loaded program.
	Prog *Program

	analyzer *Analyzer
	store    *factStore
	results  map[*Package]any
	findings []Finding
}

// Reportf records a finding at pos.
func (fp *FinishPass) Reportf(pos token.Pos, format string, args ...any) {
	fp.findings = append(fp.findings, Finding{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Result returns the value the analyzer's Run stored for the unit.
func (fp *FinishPass) Result(pkg *Package) any { return fp.results[pkg] }

// LookupFact returns the fact exported for obj by this analyzer, if any.
func (fp *FinishPass) LookupFact(obj types.Object) (any, bool) { return fp.store.get(obj) }

// factStore holds one analyzer's exported object facts. Keys are stable
// full names rather than object identities because a test-augmented unit
// re-checks its primary files into distinct types.Object values.
type factStore struct {
	mu sync.RWMutex
	m  map[string]any
}

func newFactStore() *factStore { return &factStore{m: map[string]any{}} }

// factKey derives the stable key for an object.
func factKey(obj types.Object) string {
	if f, ok := obj.(*types.Func); ok {
		return f.FullName()
	}
	pkg := ""
	if obj.Pkg() != nil {
		pkg = obj.Pkg().Path()
	}
	return pkg + "." + obj.Name()
}

func (s *factStore) set(obj types.Object, fact any) {
	key := factKey(obj)
	s.mu.Lock()
	s.m[key] = fact
	s.mu.Unlock()
}

func (s *factStore) get(obj types.Object) (any, bool) {
	key := factKey(obj)
	s.mu.RLock()
	v, ok := s.m[key]
	s.mu.RUnlock()
	return v, ok
}

// Options configures a driver run.
type Options struct {
	// Workers bounds the worker budget; <= 0 selects GOMAXPROCS.
	Workers int
	// Only restricts the run to the named analyzers (nil = all).
	Only []string
	// Skip drops the named analyzers.
	Skip []string
}

// Run type-checks the program (dependency-ordered, parallel across the
// worker budget) and executes the analyzers against every unit, then
// applies //vdlint:ignore suppressions and returns the surviving
// diagnostics sorted by (file, line, column, analyzer, message).
func Run(prog *Program, analyzers []*Analyzer, opts Options) ([]Diagnostic, error) {
	selected, err := selectAnalyzers(analyzers, opts)
	if err != nil {
		return nil, err
	}
	budget := workpool.New(opts.Workers)
	if err := prog.EnsureTyped(budget); err != nil {
		return nil, err
	}

	stores := make([]*factStore, len(selected))
	for i := range stores {
		stores[i] = newFactStore()
	}
	// passes[unit][analyzer]: every slot is written by exactly one task,
	// so collection is deterministic without locks.
	passes := map[*Package][]*Pass{}
	for _, u := range prog.Packages {
		passes[u] = make([]*Pass, len(selected))
	}
	for _, level := range prog.levels {
		level := level
		err := budget.ForEach(len(level), func(_, i int) error {
			u := level[i]
			for ai, a := range selected {
				pass := &Pass{Prog: prog, Pkg: u, analyzer: a, store: stores[ai]}
				a.Run(pass)
				passes[u][ai] = pass
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}

	byAnalyzer := map[string][]Diagnostic{}
	record := func(name string, findings []Finding) {
		for _, f := range findings {
			pos := prog.Fset.Position(f.Pos)
			pos.Filename = prog.relFile(pos.Filename)
			byAnalyzer[name] = append(byAnalyzer[name], Diagnostic{Pos: pos, Analyzer: name, Message: f.Message})
		}
	}
	for ai, a := range selected {
		for _, u := range prog.Packages {
			record(a.Name, passes[u][ai].findings)
		}
		if a.Finish != nil {
			fp := &FinishPass{Prog: prog, analyzer: a, store: stores[ai], results: map[*Package]any{}}
			for _, u := range prog.Packages {
				fp.results[u] = passes[u][ai].result
			}
			a.Finish(fp)
			record(a.Name, fp.findings)
		}
	}

	ran := map[string]bool{}
	for _, a := range selected {
		ran[a.Name] = true
	}
	known := map[string]bool{}
	for _, a := range analyzers {
		known[a.Name] = true
	}
	out := applySuppressions(prog, byAnalyzer, ran, known)
	sortDiagnostics(out)
	return out, nil
}

// EnsureTyped type-checks every unit that is not yet checked, levels in
// dependency order, units within a level across the budget's workers.
func (prog *Program) EnsureTyped(budget *workpool.Budget) error {
	prog.typateMu.Lock()
	defer prog.typateMu.Unlock()
	if prog.typed {
		return nil
	}
	for _, level := range prog.levels {
		level := level
		err := budget.ForEach(len(level), func(_, i int) error {
			return prog.check(level[i])
		})
		if err != nil {
			return err
		}
	}
	prog.typed = true
	return nil
}

// selectAnalyzers applies Only/Skip, rejecting unknown names so a typo
// in -only can never silently disable the gate.
func selectAnalyzers(analyzers []*Analyzer, opts Options) ([]*Analyzer, error) {
	byName := map[string]*Analyzer{}
	for _, a := range analyzers {
		byName[a.Name] = a
	}
	for _, name := range append(append([]string{}, opts.Only...), opts.Skip...) {
		if byName[name] == nil {
			return nil, fmt.Errorf("vdlint: unknown analyzer %q", name)
		}
	}
	skip := map[string]bool{}
	for _, name := range opts.Skip {
		skip[name] = true
	}
	var out []*Analyzer
	if len(opts.Only) > 0 {
		seen := map[string]bool{}
		for _, a := range analyzers { // preserve registration order
			for _, name := range opts.Only {
				if a.Name == name && !seen[name] && !skip[name] {
					out = append(out, a)
					seen[name] = true
				}
			}
		}
	} else {
		for _, a := range analyzers {
			if !skip[a.Name] {
				out = append(out, a)
			}
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("vdlint: no analyzers selected")
	}
	return out, nil
}

// relFile rewrites an absolute file path to be module-root-relative (in
// slash form); paths outside the root stay as they are.
func (prog *Program) relFile(name string) string {
	rel, err := filepath.Rel(prog.Root, name)
	if err != nil || strings.HasPrefix(rel, "..") {
		return name
	}
	return filepath.ToSlash(rel)
}

// sortDiagnostics orders diagnostics by (file, line, column, analyzer,
// message) — a total order, so output is identical at any worker count.
func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// jsonDiagnostic is the stable wire shape of one diagnostic.
type jsonDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// WriteJSON encodes the diagnostics as a JSON array (never null) with a
// fixed field order, one diagnostic per line, so the tier-1 gate's
// output is machine-checkable and byte-stable across runs and worker
// counts.
func WriteJSON(w io.Writer, diags []Diagnostic) error {
	if len(diags) == 0 {
		_, err := io.WriteString(w, "[]\n")
		return err
	}
	if _, err := io.WriteString(w, "[\n"); err != nil {
		return err
	}
	for i, d := range diags {
		row, err := json.Marshal(jsonDiagnostic{
			File: d.Pos.Filename, Line: d.Pos.Line, Column: d.Pos.Column,
			Analyzer: d.Analyzer, Message: d.Message,
		})
		if err != nil {
			return err
		}
		sep := ",\n"
		if i == len(diags)-1 {
			sep = "\n"
		}
		if _, err := fmt.Fprintf(w, " %s%s", row, sep); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "]\n")
	return err
}
