// Package vdlint is a small, dependency-free static-analysis framework
// for this module, in the style of go/analysis: a loader that parses the
// module's packages, an Analyzer interface, and a driver that runs the
// analyzers and collects position-tagged diagnostics. The toolchain's
// golang.org/x/tools multichecker is deliberately not used — the module
// is stdlib-only — so cmd/vdlint binds the repo-specific analyzers in
// this package into a standalone checker.
package vdlint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed directory of the module.
type Package struct {
	// Path is the package's import path (module path + relative dir).
	Path string
	// Dir is the directory relative to the module root ("." for the root).
	Dir string
	// Files holds the parsed files, test files included, in file-name
	// order. File names are available through Program.Fset.
	Files []*ast.File
}

// Program is the loaded module: every package, sharing one FileSet.
type Program struct {
	// ModulePath is the module path from go.mod.
	ModulePath string
	// Fset resolves token positions for all files.
	Fset *token.FileSet
	// Packages lists the parsed packages in path order.
	Packages []*Package
}

// Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	// Pos is the resolved file position of the finding.
	Pos token.Position
	// Analyzer names the analyzer that produced the finding.
	Analyzer string
	// Message describes the finding.
	Message string
}

// String formats the diagnostic the way Go tools print findings.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Analyzer is one whole-program check. Run inspects the program and
// returns its findings; the driver sorts and positions them.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and on the command line.
	Name string
	// Doc is a one-line description.
	Doc string
	// Run produces the findings as (pos, message) pairs.
	Run func(prog *Program) []Finding
}

// Finding is an unresolved diagnostic: a token.Pos plus a message. The
// driver resolves positions against the program's FileSet.
type Finding struct {
	Pos     token.Pos
	Message string
}

// Load parses every .go file of the module rooted at dir, grouping files
// by directory. Hidden directories and testdata trees are skipped, like
// the go tool does. Test files are included: the analyzers here reason
// about what the tests exercise.
func Load(dir string) (*Program, error) {
	modPath, err := modulePath(filepath.Join(dir, "go.mod"))
	if err != nil {
		return nil, err
	}
	prog := &Program{ModulePath: modPath, Fset: token.NewFileSet()}
	byDir := map[string]*Package{}
	err = filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != dir && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		file, err := parser.ParseFile(prog.Fset, path, nil, parser.ParseComments)
		if err != nil {
			return fmt.Errorf("vdlint: parse %s: %w", path, err)
		}
		rel, err := filepath.Rel(dir, filepath.Dir(path))
		if err != nil {
			return err
		}
		rel = filepath.ToSlash(rel)
		pkg, ok := byDir[rel]
		if !ok {
			importPath := modPath
			if rel != "." {
				importPath = modPath + "/" + rel
			}
			pkg = &Package{Path: importPath, Dir: rel}
			byDir[rel] = pkg
		}
		pkg.Files = append(pkg.Files, file)
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, pkg := range byDir {
		prog.Packages = append(prog.Packages, pkg)
	}
	sort.Slice(prog.Packages, func(i, j int) bool { return prog.Packages[i].Path < prog.Packages[j].Path })
	return prog, nil
}

// Run executes the analyzers against the program and returns all
// diagnostics sorted by position.
func Run(prog *Program, analyzers []*Analyzer) []Diagnostic {
	var out []Diagnostic
	for _, a := range analyzers {
		for _, f := range a.Run(prog) {
			out = append(out, Diagnostic{
				Pos:      prog.Fset.Position(f.Pos),
				Analyzer: a.Name,
				Message:  f.Message,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Message < b.Message
	})
	return out
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("vdlint: %w", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("vdlint: no module line in %s", gomod)
}
