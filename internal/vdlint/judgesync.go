package vdlint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// JudgeSync cross-checks the judge tables that the differential suite
// depends on staying in lockstep: the compiled VM (svclang/compile) and
// the reference interpreter/oracle (svclang) each hold switch statements
// over the same enums — SinkKind for structural-taint judgment and
// structure fingerprinting, Builtin for sanitizer semantics. A case
// added on one side but not the other is exactly the bug class the
// bytecode-vs-interpreter lockstep tests can miss when no workload
// happens to exercise the new case. The analyzer resolves each switch's
// case-constant set through type information and reports any asymmetry;
// a renamed or deleted anchor function is itself reported so the check
// can never silently stop guarding.
var JudgeSync = &Analyzer{
	Name:   "judgesync",
	Doc:    "VM and interpreter judge switches (SinkKind, Builtin) must enumerate identical cases",
	Run:    runJudgeSync,
	Finish: finishJudgeSync,
}

// judgeFunc names one switch-bearing function: package (module-relative),
// optional receiver type, function name, and the enum its switch ranges
// over.
type judgeFunc struct {
	pkg  string
	recv string
	name string
	enum string
}

// display renders the function for diagnostics.
func (jf judgeFunc) display() string {
	if jf.recv != "" {
		return jf.recv + "." + jf.name
	}
	return jf.name
}

// judgePair is one mirror obligation between two judge functions.
// Constants named in except are exempt from the comparison, for cases
// one side intentionally handles elsewhere.
type judgePair struct {
	a, b   judgeFunc
	except map[string]bool
}

// judgeSyncPairs lists the mirror obligations. BuiltinConcat is exempt
// from the builtin pair: the VM compiles concat to a dedicated opcode,
// so (*arena).builtin never sees it.
var judgeSyncPairs = []judgePair{
	{
		a: judgeFunc{pkg: "internal/svclang/compile", name: "structuralTaint", enum: "SinkKind"},
		b: judgeFunc{pkg: "internal/svclang", name: "StructuralTaint", enum: "SinkKind"},
	},
	{
		a:      judgeFunc{pkg: "internal/svclang/compile", recv: "arena", name: "builtin", enum: "Builtin"},
		b:      judgeFunc{pkg: "internal/svclang", name: "applyBuiltin", enum: "Builtin"},
		except: map[string]bool{"BuiltinConcat": true},
	},
	{
		a: judgeFunc{pkg: "internal/svclang", name: "StructureFingerprint", enum: "SinkKind"},
		b: judgeFunc{pkg: "internal/svclang", name: "Structure", enum: "SinkKind"},
	},
}

// judgeFuncInfo is one located judge function: where it is and which
// enum constants its switches name.
type judgeFuncInfo struct {
	pos   token.Pos
	cases map[string]bool
}

// judgeSyncResult maps judgeFunc → located info for one unit.
type judgeSyncResult map[judgeFunc]judgeFuncInfo

func runJudgeSync(pass *Pass) {
	if pass.Pkg.Kind != UnitPrimary {
		return
	}
	var wanted []judgeFunc
	for _, p := range judgeSyncPairs {
		for _, jf := range [2]judgeFunc{p.a, p.b} {
			if pass.Pkg.Path == pass.Prog.ModulePath+"/"+jf.pkg {
				wanted = append(wanted, jf)
			}
		}
	}
	if len(wanted) == 0 {
		return
	}
	res := judgeSyncResult{}
	for _, file := range pass.Pkg.Files {
		for _, d := range file.Decls {
			fn, ok := d.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			for _, jf := range wanted {
				if fn.Name.Name != jf.name || receiverTypeName(fn) != jf.recv {
					continue
				}
				res[jf] = judgeFuncInfo{
					pos:   fn.Name.Pos(),
					cases: switchCaseConstants(pass.Pkg.TypesInfo, fn.Body, jf.enum),
				}
			}
		}
	}
	pass.SetResult(res)
}

func finishJudgeSync(fp *FinishPass) {
	found := judgeSyncResult{}
	for _, u := range fp.Prog.Packages {
		res, ok := fp.Result(u).(judgeSyncResult)
		if !ok {
			continue
		}
		for jf, info := range res {
			found[jf] = info
		}
	}
	for _, p := range judgeSyncPairs {
		ia, okA := found[p.a]
		ib, okB := found[p.b]
		if !okA || !okB {
			for _, side := range []struct {
				jf    judgeFunc
				ok    bool
				other judgeFunc
			}{{p.a, okA, p.b}, {p.b, okB, p.a}} {
				if side.ok {
					continue
				}
				pos := fp.anchorPos(side.jf.pkg)
				if other, ok := found[side.other]; ok {
					pos = other.pos
				}
				fp.Reportf(pos,
					"judge function %s not found in %s; if it was renamed, update the judgesync table so the VM/interpreter mirror check keeps guarding it",
					side.jf.display(), side.jf.pkg)
			}
			continue
		}
		for _, name := range sortedNames(ia.cases) {
			if !ib.cases[name] && !p.except[name] {
				fp.Reportf(ia.pos, "%s handles %s but its mirror %s does not; the VM and interpreter judge tables diverged",
					p.a.display(), name, p.b.display())
			}
		}
		for _, name := range sortedNames(ib.cases) {
			if !ia.cases[name] && !p.except[name] {
				fp.Reportf(ib.pos, "%s handles %s but its mirror %s does not; the VM and interpreter judge tables diverged",
					p.b.display(), name, p.a.display())
			}
		}
	}
}

// anchorPos returns a position inside the named module-relative package,
// for diagnostics about functions that no longer exist there.
func (fp *FinishPass) anchorPos(rel string) token.Pos {
	if u, ok := fp.Prog.byPath[fp.Prog.ModulePath+"/"+rel]; ok && len(u.Files) > 0 {
		return u.Files[0].Package
	}
	return token.NoPos
}

// receiverTypeName returns the name of fn's receiver type ("" for a
// package-level function), with any pointer stripped.
func receiverTypeName(fn *ast.FuncDecl) string {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return ""
	}
	t := fn.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := ast.Unparen(t).(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

// switchCaseConstants collects the names of every constant of the named
// enum type that appears in a case clause anywhere in body.
func switchCaseConstants(info *types.Info, body ast.Node, enum string) map[string]bool {
	out := map[string]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		cc, ok := n.(*ast.CaseClause)
		if !ok {
			return true
		}
		for _, expr := range cc.List {
			var id *ast.Ident
			switch e := ast.Unparen(expr).(type) {
			case *ast.Ident:
				id = e
			case *ast.SelectorExpr:
				id = e.Sel
			default:
				continue
			}
			c, ok := info.Uses[id].(*types.Const)
			if !ok {
				continue
			}
			if named, ok := c.Type().(*types.Named); ok && named.Obj().Name() == enum {
				out[c.Name()] = true
			}
		}
		return true
	})
	return out
}

// sortedNames returns the map's keys in sorted order.
func sortedNames(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
