package vdlint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// JudgeSync verifies the shared judge tables of package svclang — the
// single source of truth the interpreter, the bytecode VM and the
// black-box structure analyses all dispatch through. Each table is a
// composite literal indexed by an enum (sinkJudges by SinkKind,
// builtinSpecs by Builtin); a constant added to the enum without a
// keyed entry in its table would make every dispatcher silently treat
// the new kind as "judge nothing", which is exactly the bug class the
// bytecode-vs-interpreter lockstep tests can miss when no workload
// happens to exercise the new case. The analyzer resolves the
// literal's keys through type information and reports every enum
// constant without an entry; a renamed or deleted table is itself
// reported so the check can never silently stop guarding. (Before the
// shared tables existed, this analyzer mirrored per-engine switch
// statements against each other; the tables replaced the mirrors, and
// the coverage obligation replaced the symmetry obligation.)
var JudgeSync = &Analyzer{
	Name:   "judgesync",
	Doc:    "the shared judge tables (sinkJudges, builtinSpecs) must cover every constant of their enum",
	Run:    runJudgeSync,
	Finish: finishJudgeSync,
}

// judgeTable names one table obligation: the module-relative package,
// the package-level composite-literal variable, and the enum whose
// every constant must appear among the literal's keys.
type judgeTable struct {
	pkg  string
	name string
	enum string
}

// judgeSyncTables lists the coverage obligations.
var judgeSyncTables = []judgeTable{
	{pkg: "internal/svclang", name: "sinkJudges", enum: "SinkKind"},
	{pkg: "internal/svclang", name: "builtinSpecs", enum: "Builtin"},
}

// judgeTableInfo is one located table: where its literal is, which enum
// constants appear as keys, and which constants the enum declares in
// that package.
type judgeTableInfo struct {
	pos   token.Pos
	keys  map[string]bool
	enums map[string]bool
}

// judgeSyncResult maps judgeTable → located info for one unit.
type judgeSyncResult map[judgeTable]judgeTableInfo

func runJudgeSync(pass *Pass) {
	if pass.Pkg.Kind != UnitPrimary {
		return
	}
	var wanted []judgeTable
	for _, jt := range judgeSyncTables {
		if pass.Pkg.Path == pass.Prog.ModulePath+"/"+jt.pkg {
			wanted = append(wanted, jt)
		}
	}
	if len(wanted) == 0 {
		return
	}
	res := judgeSyncResult{}
	for _, file := range pass.Pkg.Files {
		for _, d := range file.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, ident := range vs.Names {
					for _, jt := range wanted {
						if ident.Name != jt.name || i >= len(vs.Values) {
							continue
						}
						lit, ok := vs.Values[i].(*ast.CompositeLit)
						if !ok {
							continue
						}
						res[jt] = judgeTableInfo{
							pos:   ident.Pos(),
							keys:  literalKeyConstants(pass.Pkg.TypesInfo, lit, jt.enum),
							enums: enumConstants(pass.Pkg.TypesInfo, pass.Pkg.Files, jt.enum),
						}
					}
				}
			}
		}
	}
	pass.SetResult(res)
}

func finishJudgeSync(fp *FinishPass) {
	found := judgeSyncResult{}
	for _, u := range fp.Prog.Packages {
		res, ok := fp.Result(u).(judgeSyncResult)
		if !ok {
			continue
		}
		for jt, info := range res {
			found[jt] = info
		}
	}
	for _, jt := range judgeSyncTables {
		info, ok := found[jt]
		if !ok {
			fp.Reportf(fp.anchorPos(jt.pkg),
				"judge table %s not found in %s; if it was renamed, update the judgesync table list so the coverage check keeps guarding it",
				jt.name, jt.pkg)
			continue
		}
		for _, name := range sortedNames(info.enums) {
			if !info.keys[name] {
				fp.Reportf(info.pos,
					"judge table %s has no entry for %s; every %s constant must be covered, or every dispatcher silently judges the new kind as nothing",
					jt.name, name, jt.enum)
			}
		}
	}
}

// anchorPos returns a position inside the named module-relative package,
// for diagnostics about tables that no longer exist there.
func (fp *FinishPass) anchorPos(rel string) token.Pos {
	if u, ok := fp.Prog.byPath[fp.Prog.ModulePath+"/"+rel]; ok && len(u.Files) > 0 {
		return u.Files[0].Package
	}
	return token.NoPos
}

// literalKeyConstants collects the names of every constant of the named
// enum type used as a key in the composite literal.
func literalKeyConstants(info *types.Info, lit *ast.CompositeLit, enum string) map[string]bool {
	out := map[string]bool{}
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		var id *ast.Ident
		switch e := ast.Unparen(kv.Key).(type) {
		case *ast.Ident:
			id = e
		case *ast.SelectorExpr:
			id = e.Sel
		default:
			continue
		}
		c, ok := info.Uses[id].(*types.Const)
		if !ok {
			continue
		}
		if named, ok := c.Type().(*types.Named); ok && named.Obj().Name() == enum {
			out[c.Name()] = true
		}
	}
	return out
}

// enumConstants collects every package-level constant of the named enum
// type declared in the given files.
func enumConstants(info *types.Info, files []*ast.File, enum string) map[string]bool {
	out := map[string]bool{}
	for _, file := range files {
		for _, d := range file.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok || gd.Tok != token.CONST {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, ident := range vs.Names {
					c, ok := info.Defs[ident].(*types.Const)
					if !ok {
						continue
					}
					if named, ok := c.Type().(*types.Named); ok && named.Obj().Name() == enum {
						out[c.Name()] = true
					}
				}
			}
		}
	}
	return out
}

// sortedNames returns the map's keys in sorted order.
func sortedNames(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
