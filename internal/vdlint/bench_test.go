package vdlint

import (
	"path/filepath"
	"testing"
)

// benchExports resolves the shared export table outside the timed
// region.
func benchExports(b *testing.B) LoadOptions {
	b.Helper()
	exportsOnce.Do(func() {
		exportsTab, exportsErr = GoListExports(filepath.Join("..", ".."))
	})
	if exportsErr != nil {
		b.Skipf("go list -export unavailable: %v", exportsErr)
	}
	return LoadOptions{Exports: exportsTab}
}

// BenchmarkVdlint measures the three phases of a lint run over this
// repository: parsing/splitting (load), type-checking, and the full
// analyze pipeline at several worker counts. The syntactic subset runs
// the five ported single-pass analyzers only — the cost profile of the
// pre-typed vdlint — for comparison against the typed full suite.
func BenchmarkVdlint(b *testing.B) {
	root := filepath.Join("..", "..")
	opts := benchExports(b)

	b.Run("load", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := LoadWith(root, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("typecheck", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			prog, err := LoadWith(root, opts)
			if err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			if err := prog.EnsureTyped(newTestBudget()); err != nil {
				b.Fatal(err)
			}
		}
	})
	run := func(b *testing.B, analyzers []*Analyzer, workers int) {
		b.Helper()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			prog, err := LoadWith(root, opts)
			if err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			if _, err := Run(prog, analyzers, Options{Workers: workers}); err != nil {
				b.Fatal(err)
			}
		}
	}
	syntactic := []*Analyzer{ToolWired, RandImport, NoDefaultMux, CtxFirst, CompiledExec}
	b.Run("analyze/syntactic", func(b *testing.B) { run(b, syntactic, 0) })
	for _, workers := range []int{1, 2, 4} {
		workers := workers
		b.Run("analyze/full/workers="+string(rune('0'+workers)), func(b *testing.B) {
			run(b, All(), workers)
		})
	}
}
