package vdlint

import (
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// wantRe extracts the backtick-quoted expectations of a `// want`
// comment: each is a regexp the diagnostic message on that line must
// match.
var wantRe = regexp.MustCompile("`([^`]*)`")

type wantExpectation struct {
	file string // corpus-relative slash path
	line int
	re   *regexp.Regexp
	used bool
}

// parseWants scans every .go file under root for // want comments.
func parseWants(t *testing.T, root string) []*wantExpectation {
	t.Helper()
	var wants []*wantExpectation
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		rel = filepath.ToSlash(rel)
		for i, line := range strings.Split(string(data), "\n") {
			_, rest, ok := strings.Cut(line, "// want ")
			if !ok {
				continue
			}
			matches := wantRe.FindAllStringSubmatch(rest, -1)
			if len(matches) == 0 {
				t.Errorf("%s:%d: // want comment without backtick-quoted expectations", rel, i+1)
				continue
			}
			for _, m := range matches {
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Errorf("%s:%d: bad want regexp %q: %v", rel, i+1, m[1], err)
					continue
				}
				wants = append(wants, &wantExpectation{file: rel, line: i + 1, re: re})
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return wants
}

// TestGoldenCorpus runs the full analyzer suite over the corpus module
// in testdata/golden and checks the diagnostics against the corpus's
// // want comments, both ways: every diagnostic must be expected, and
// every expectation must fire at its exact file and line.
func TestGoldenCorpus(t *testing.T) {
	root := filepath.Join("testdata", "golden")
	prog, err := LoadWith(root, fixtureOptions(t))
	if err != nil {
		t.Fatal(err)
	}
	diags := mustRun(t, prog, All(), Options{})
	wants := parseWants(t, root)
	if len(wants) == 0 {
		t.Fatal("corpus has no // want expectations")
	}
	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if !w.used && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.used = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.used {
			t.Errorf("%s:%d: expected diagnostic matching %q never reported", w.file, w.line, w.re)
		}
	}
}

// TestGoldenCorpusJSONStable loads and analyzes the corpus twice and
// requires byte-identical JSON: position-accurate diagnostics are only
// trustworthy if they are also reproducible.
func TestGoldenCorpusJSONStable(t *testing.T) {
	root := filepath.Join("testdata", "golden")
	render := func(workers int) string {
		prog, err := LoadWith(root, fixtureOptions(t))
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		if err := WriteJSON(&sb, mustRun(t, prog, All(), Options{Workers: workers})); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	first, second := render(1), render(4)
	if first != second {
		t.Fatalf("corpus JSON not stable across runs/worker counts:\n%s\n---\n%s", first, second)
	}
}
