module example.com/golden

go 1.22
