// Package suppressed exercises the //vdlint:ignore machinery: a
// suppression that works (and therefore produces no diagnostic), a
// stale one, one without a reason, and one naming an unknown analyzer.
package suppressed

import (
	"math/rand" //vdlint:ignore randimport this package demonstrates suppression; the import is the demo
)

var _ = rand.New

//vdlint:ignore detrand nothing below ever matched, so this must be reported stale // want `unused vdlint:ignore for detrand`
var stale = 1

//vdlint:ignore randimport // want `vdlint:ignore randimport has no reason`
var noReason = 2

//vdlint:ignore nosuchanalyzer because reasons // want `vdlint:ignore names unknown analyzer nosuchanalyzer`
var unknown = 3
