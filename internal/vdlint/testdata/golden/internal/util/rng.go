// Package util is the corpus's innocent-looking helper package: it is
// not one of the deterministic packages, so its wall-clock and rand
// calls are legal here — but detrand's taint follows them into any
// deterministic caller.
package util

import (
	"math/rand" // want `package example.com/golden/internal/util imports math/rand`
	"time"
)

// Rand wraps the globally seeded generator; calling it from a
// deterministic package is the classic hidden-nondeterminism bug.
func Rand() int { return rand.Int() }

// Stamp reads the wall clock behind two layers of indirection.
func Stamp() int64 { return now().UnixNano() }

func now() time.Time { return time.Now() }

// Pure is genuinely deterministic and must not pick up taint.
func Pure(n int) int { return n * 2 }
