// Package service exercises ctxflow (a stored context and a severed
// one) and nodefaultmux (routing through the global mux).
package service

import (
	"context"
	"net/http"
)

type session struct {
	name string
	ctx  context.Context // want `struct field stores a context.Context`
}

var _ = session{}

// Handle severs the caller's context mid-pipeline.
func Handle(ctx context.Context, name string) error {
	sub := context.Background() // want `Handle already receives a context; context.Background here discards the caller's cancellation`
	_ = sub
	return nil
}

// Entry nil-defaults its parameter — the sanctioned shape, no finding.
func Entry(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background()
	}
	_ = ctx
	return nil
}

func routes() {
	http.HandleFunc("/submit", nil)    // want `http.HandleFunc registers on http.DefaultServeMux`
	_ = http.ListenAndServe(":0", nil) // want `http.ListenAndServe with a nil handler serves http.DefaultServeMux`
}

var _ = routes
