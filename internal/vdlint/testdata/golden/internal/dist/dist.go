// Package dist is the corpus mock of the distributed-execution
// subsystem: coordinator-shaped code carrying the three seeded
// violations its real counterpart must never regress into — a direct
// wall-clock read (detrand), a buried context parameter (ctxfirst) and
// a watchdog goroutine with no termination path (leakygo) — each paired
// with the clean idiom the real package uses.
package dist

import (
	"context"
	"time"
)

// Coordinator leases shards to workers. The real one injects its clock;
// the corpus one keeps both shapes side by side.
type Coordinator struct {
	// now is the injected clock: reading it is a pure function of what
	// the constructor stored, so leaseClean stays unflagged.
	now func() time.Time
}

// leaseStamp reads the wall clock directly — shard lease ordering would
// depend on scheduler timing.
func (c *Coordinator) leaseStamp() time.Time {
	return time.Now() // want `deterministic package example.com/golden/internal/dist calls time.Now`
}

// leaseClean goes through the injected clock instead.
func (c *Coordinator) leaseClean() time.Time {
	return c.now()
}

// PullShard buries its context behind the worker ID — the signature
// every caller will get wrong.
func PullShard(worker string, ctx context.Context) error { // want `exported PullShard takes context.Context as parameter 2`
	_ = worker
	return ctx.Err()
}

// ReportShard is the convention-abiding twin and stays clean.
func ReportShard(ctx context.Context, worker string) error {
	_ = worker
	return ctx.Err()
}

// Watch launches the heartbeat watchdog leak: no channel, no context —
// a lost worker's watcher would spin forever.
func Watch() {
	go func() { // want `goroutine has no termination path`
		beats := 0
		for {
			beats++
		}
	}()
}

// WatchUntil is the repaired watchdog: the done channel gives the
// goroutine a termination path, as the real watchWorker's select does.
func WatchUntil(done chan struct{}) {
	go func() {
		for {
			select {
			case <-done:
				return
			default:
			}
		}
	}()
}
