// Package harness carries the corpus's seeded violations for the
// deep analyzers: a wrapped rand call that only interprocedural taint
// can see, a buried context parameter, a by-value lock, and a goroutine
// with no termination path.
package harness

import (
	"context"
	"sync"

	"example.com/golden/internal/util"
)

// Campaign reaches the global rand generator through util.Rand — two
// packages away from any math/rand import in this file.
func Campaign(seed int64) int {
	return util.Rand() // want `deterministic package example.com/golden/internal/harness calls util.Rand, which reaches math/rand.Int`
}

// Deadline reaches time.Now through util.Stamp → now → time.Now.
func Deadline() int64 {
	return util.Stamp() // want `calls util.Stamp, which reaches util.now → time.Now`
}

// Derived uses only the seed; no taint, no finding.
func Derived(seed int64) int { return util.Pure(int(seed)) }

// RunCase buries its context behind the name — the signature every
// caller will get wrong.
func RunCase(name string, ctx context.Context) error { // want `exported RunCase takes context.Context as parameter 2`
	_ = ctx
	return nil
}

// counters carries a mutex, so passing it by value copies the lock.
type counters struct {
	mu sync.Mutex
	n  int
}

// Snapshot copies the lock twice: once in, once out.
func Snapshot(c counters) counters { // want `parameter of Snapshot passes example.com/golden/internal/harness.counters by value, copying its sync.Mutex` `result of Snapshot passes example.com/golden/internal/harness.counters by value, copying its sync.Mutex`
	return c
}

// Spin launches the classic leak: no channel, no context, no WaitGroup —
// nothing can stop it or wait for it.
func Spin() {
	go func() { // want `goroutine has no termination path`
		n := 0
		for {
			n++
		}
	}()
}

// Drain launches a worker that ranges its job channel; closing the
// channel terminates it, so this shape is clean.
func Drain(jobs chan int) {
	done := make(chan struct{})
	go func() {
		defer close(done)
		for range jobs {
		}
	}()
	<-done
}
