// Package detectors exercises toolwired (an orphaned constructor) and
// compiledexec (a raw interpreter call on the execution path).
package detectors

import "example.com/golden/internal/svclang"

type Tool interface{ Name() string }

func NewWired() Tool  { return nil }
func NewOrphan() Tool { return nil } // want `constructor NewOrphan returns a Tool but is never exercised`

func StandardSuite() []Tool { return []Tool{NewWired()} }

func probe(s *svclang.Service) {
	_, _ = svclang.Execute(s, nil) // want `calls svclang.Execute directly; execute through compile.Engine`
}

var _ = probe
