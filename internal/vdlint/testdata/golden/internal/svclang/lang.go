// Package svclang mirrors the repo's interpreter-side judge surface so
// the golden corpus can exercise judgesync and compiledexec exactly the
// way the real module wires them.
package svclang

type Service struct{}
type Request map[string]string
type Result struct{}

func Execute(s *Service, r Request) (Result, error)          { return Result{}, nil }
func Analyze(s *Service) error                               { return nil }
func ExecuteInSession(s *Service, r Request) (Result, error) { return Result{}, nil }

type SinkKind int

const (
	SinkSQL SinkKind = iota + 1
	SinkXPath
	SinkHTML
)

type Builtin int

const (
	BuiltinConcat Builtin = iota + 1
	BuiltinTrim
	BuiltinUpper
)

type sinkJudge struct{ name string }
type builtinSpec struct{ mode int }

// sinkJudges deliberately drops SinkHTML so judgesync has a coverage
// gap to report.
var sinkJudges = [SinkHTML + 1]sinkJudge{ // want `judge table sinkJudges has no entry for SinkHTML`
	SinkSQL:   {name: "sql"},
	SinkXPath: {name: "xpath"},
}

var builtinSpecs = [BuiltinUpper + 1]builtinSpec{
	BuiltinConcat: {mode: 1},
	BuiltinTrim:   {mode: 2},
	BuiltinUpper:  {mode: 3},
}

var (
	_ = sinkJudges
	_ = builtinSpecs
)
