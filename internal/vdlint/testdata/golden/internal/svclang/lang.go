// Package svclang mirrors the repo's interpreter-side judge surface so
// the golden corpus can exercise judgesync and compiledexec exactly the
// way the real module wires them.
package svclang

type Service struct{}
type Request map[string]string
type Result struct{}

func Execute(s *Service, r Request) (Result, error)          { return Result{}, nil }
func Analyze(s *Service) error                               { return nil }
func ExecuteInSession(s *Service, r Request) (Result, error) { return Result{}, nil }

type SinkKind int

const (
	SinkSQL SinkKind = iota
	SinkXPath
	SinkHTML
)

type Builtin int

const (
	BuiltinConcat Builtin = iota
	BuiltinTrim
	BuiltinUpper
)

func StructuralTaint(k SinkKind) bool { // want `StructuralTaint handles SinkHTML but its mirror structuralTaint does not`
	switch k {
	case SinkSQL:
		return true
	case SinkXPath:
		return true
	case SinkHTML:
		return true
	}
	return false
}

func applyBuiltin(b Builtin) {
	switch b {
	case BuiltinConcat:
	case BuiltinTrim:
	case BuiltinUpper:
	}
}

var _ = applyBuiltin

func StructureFingerprint(k SinkKind) { // want `StructureFingerprint handles SinkHTML but its mirror Structure does not`
	switch k {
	case SinkSQL:
	case SinkXPath:
	case SinkHTML:
	}
}

func Structure(k SinkKind) {
	switch k {
	case SinkSQL:
	case SinkXPath:
	}
}
