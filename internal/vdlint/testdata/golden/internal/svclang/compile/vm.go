// Package compile mirrors the repo's VM-side surface. Since the judge
// logic moved into package svclang's shared tables (sinkJudges,
// builtinSpecs), this package carries no judge code of its own — it
// exists so the golden corpus keeps the real module's package shape.
package compile

import "example.com/golden/internal/svclang"

type Engine struct{}

func (e *Engine) Analyze(s *svclang.Service) error { return svclang.Analyze(s) }
