// Package compile mirrors the repo's VM-side judge surface: one switch
// deliberately drops a SinkKind case so judgesync has a divergence to
// report, while the builtin pair demonstrates the BuiltinConcat opcode
// exemption.
package compile

import "example.com/golden/internal/svclang"

func structuralTaint(k svclang.SinkKind) bool {
	switch k {
	case svclang.SinkSQL:
		return true
	case svclang.SinkXPath:
		return true
	}
	return false
}

var _ = structuralTaint

type arena struct{}

// builtin omits BuiltinConcat on purpose: the VM compiles concat to a
// dedicated opcode, and judgesync's exemption table knows that.
func (a *arena) builtin(b svclang.Builtin) {
	switch b {
	case svclang.BuiltinTrim:
	case svclang.BuiltinUpper:
	}
}

var _ = (&arena{}).builtin
