// Package stats exercises detrand's direct-source and map-iteration
// checks plus randimport's one sanctioned importer.
package stats

import (
	"math/rand" // stats is the one package allowed to import math/rand
	"sort"
	"time"
)

// RNG is the sanctioned seeded generator; constructors are exempt from
// detrand because their output is a pure function of the seed.
func RNG(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// Jitter reads the global generator — flagged even in the blessed
// importer, because determinism is about call sites, not imports.
func Jitter() int {
	return rand.Int() // want `deterministic package example.com/golden/internal/stats calls math/rand.Int`
}

// Elapsed reads the wall clock directly.
func Elapsed() time.Duration {
	return time.Since(time.Time{}) // want `calls time.Since`
}

// Flatten emits map values in iteration order.
func Flatten(m map[string]float64) []float64 {
	var out []float64
	for _, v := range m {
		out = append(out, v) // want `appends in map-iteration order`
	}
	return out
}

// FlattenSorted is the idiomatic fix and stays clean.
func FlattenSorted(m map[string]float64) []float64 {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]float64, 0, len(keys))
	for _, k := range keys {
		out = append(out, m[k])
	}
	return out
}
