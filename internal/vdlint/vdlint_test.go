package vdlint

import (
	"bytes"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"github.com/dsn2015/vdbench/internal/workpool"
)

// writeModule materialises a fixture module from a map of relative path
// to file contents and returns its root.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for rel, content := range files {
		path := filepath.Join(root, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

const fixtureGomod = "module example.com/fix\n\ngo 1.22\n"

// sharedExports computes the repo's export-data table once and shares it
// across every fixture load; fixture imports are stdlib-only, so the
// table resolves them all without per-fixture `go list` subprocesses.
var (
	exportsOnce sync.Once
	exportsTab  map[string]string
	exportsErr  error
)

func fixtureOptions(t *testing.T) LoadOptions {
	t.Helper()
	exportsOnce.Do(func() {
		exportsTab, exportsErr = GoListExports(filepath.Join("..", ".."))
	})
	if exportsErr != nil {
		t.Logf("go list -export unavailable (%v); fixtures fall back to the source importer", exportsErr)
		return LoadOptions{Importer: "source"}
	}
	return LoadOptions{Exports: exportsTab}
}

// loadFixture loads a fixture module with the shared export table.
func loadFixture(t *testing.T, root string) *Program {
	t.Helper()
	prog, err := LoadWith(root, fixtureOptions(t))
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

// mustRun runs the analyzers and fails the test on driver error.
func mustRun(t *testing.T, prog *Program, analyzers []*Analyzer, opts Options) []Diagnostic {
	t.Helper()
	diags, err := Run(prog, analyzers, opts)
	if err != nil {
		t.Fatal(err)
	}
	return diags
}

func joinMessages(diags []Diagnostic) string {
	var sb strings.Builder
	for _, d := range diags {
		sb.WriteString(d.String())
		sb.WriteString("\n")
	}
	return sb.String()
}

func TestLoadSplitsUnits(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod":                         fixtureGomod,
		"a.go":                           "package fix\n",
		"internal/x/x.go":                "package x\nfunc inside() int { return 1 }\n",
		"internal/x/x_test.go":           "package x\nimport \"testing\"\nfunc TestIn(t *testing.T) { _ = inside() }\n",
		"internal/x/ext_test.go":         "package x_test\nimport \"testing\"\nfunc TestExt(t *testing.T) {}\n",
		"internal/x/testdata/ignored.go": "this is not Go and must be skipped\n",
	})
	prog := loadFixture(t, root)
	if prog.ModulePath != "example.com/fix" {
		t.Fatalf("module path = %q", prog.ModulePath)
	}
	var got []string
	for _, u := range prog.Packages {
		got = append(got, u.Path+":"+u.Kind.String())
	}
	want := []string{
		"example.com/fix:primary",
		"example.com/fix/internal/x:primary",
		"example.com/fix/internal/x:test",
		"example.com/fix/internal/x_test:external-test",
	}
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Fatalf("units = %v, want %v", got, want)
	}
	aug := prog.Packages[2]
	if len(aug.Files) != 2 || len(aug.Owned) != 1 {
		t.Fatalf("augmented unit: files=%d owned=%d, want 2/1", len(aug.Files), len(aug.Owned))
	}
	budget := newTestBudget()
	if err := prog.EnsureTyped(budget); err != nil {
		t.Fatal(err)
	}
	// The external test unit's import of x must resolve to the primary's
	// types.Package, not a re-check.
	ext := prog.Packages[3]
	for _, imp := range ext.Types.Imports() {
		if imp.Path() == "example.com/fix/internal/x" && imp != prog.Packages[1].Types {
			t.Fatal("external test re-checked the package under test instead of importing the primary unit")
		}
	}
}

func TestLoadSkipsBuildConstrainedFiles(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod": fixtureGomod,
		"a.go":   "package fix\nconst A = 1\n",
		"excluded.go": `//go:build neverever

package fix

const A = 2 // would collide with a.go if the constraint were ignored
`,
	})
	prog := loadFixture(t, root)
	if n := len(prog.Packages[0].Files); n != 1 {
		t.Fatalf("parsed %d files, want 1 (constraint-excluded file skipped)", n)
	}
	if err := prog.EnsureTyped(newTestBudget()); err != nil {
		t.Fatalf("type check failed, so the excluded file leaked in: %v", err)
	}
}

func TestLoadRejectsTestImportDiamond(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod":               fixtureGomod,
		"internal/a/a.go":      "package a\nfunc A() int { return 1 }\n",
		"internal/a/a_test.go": "package a\nimport \"example.com/fix/internal/b\"\nvar _ = b.B\n",
		"internal/b/b.go":      "package b\nimport \"example.com/fix/internal/a\"\nfunc B() int { return a.A() }\n",
	})
	_, err := LoadWith(root, fixtureOptions(t))
	if err == nil || !strings.Contains(err.Error(), "imports example.com/fix/internal/a back") {
		t.Fatalf("diamond not rejected: err = %v", err)
	}
}

func newTestBudget() *workpool.Budget { return workpool.New(2) }

func TestSortDiagnosticsUsesColumn(t *testing.T) {
	mk := func(file string, line, col int, an, msg string) Diagnostic {
		return Diagnostic{Pos: token.Position{Filename: file, Line: line, Column: col}, Analyzer: an, Message: msg}
	}
	diags := []Diagnostic{
		mk("b.go", 1, 1, "x", "m"),
		mk("a.go", 2, 9, "x", "m"),
		mk("a.go", 2, 3, "z", "m"),
		mk("a.go", 2, 3, "a", "n"),
		mk("a.go", 2, 3, "a", "m"),
	}
	sortDiagnostics(diags)
	var got []string
	for _, d := range diags {
		got = append(got, d.String())
	}
	want := []string{
		"a.go:2:3: [a] m",
		"a.go:2:3: [a] n",
		"a.go:2:3: [z] m",
		"a.go:2:9: [x] m",
		"b.go:1:1: [x] m",
	}
	if strings.Join(got, "|") != strings.Join(want, "|") {
		t.Fatalf("sorted order:\n%s\nwant:\n%s", strings.Join(got, "\n"), strings.Join(want, "\n"))
	}
}

func TestSelectAnalyzers(t *testing.T) {
	a := &Analyzer{Name: "a", Run: func(*Pass) {}}
	b := &Analyzer{Name: "b", Run: func(*Pass) {}}
	sel, err := selectAnalyzers([]*Analyzer{a, b}, Options{Only: []string{"b"}})
	if err != nil || len(sel) != 1 || sel[0] != b {
		t.Fatalf("Only: sel=%v err=%v", sel, err)
	}
	sel, err = selectAnalyzers([]*Analyzer{a, b}, Options{Skip: []string{"b"}})
	if err != nil || len(sel) != 1 || sel[0] != a {
		t.Fatalf("Skip: sel=%v err=%v", sel, err)
	}
	if _, err = selectAnalyzers([]*Analyzer{a, b}, Options{Only: []string{"nope"}}); err == nil {
		t.Fatal("unknown analyzer in -only not rejected")
	}
	if _, err = selectAnalyzers([]*Analyzer{a, b}, Options{Skip: []string{"a", "b"}}); err == nil {
		t.Fatal("empty selection not rejected")
	}
}

func TestToolWiredFlagsOrphanConstructor(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod": fixtureGomod,
		"internal/detectors/tool.go": `package detectors
type Tool interface{ Name() string }
func NewWired() Tool { return nil }
func NewOrphan() Tool { return nil }
func NewTested() (Tool, error) { return nil, nil }
func NewHelper() int { return 0 } // not a Tool constructor
func StandardSuite() []Tool { return []Tool{NewWired()} }
`,
		"internal/detectors/tool_test.go": `package detectors
import "testing"
func TestTested(t *testing.T) { NewTested() }
`,
	})
	diags := mustRun(t, loadFixture(t, root), []*Analyzer{ToolWired}, Options{})
	if len(diags) != 1 {
		t.Fatalf("diagnostics = %v, want exactly the orphan", diags)
	}
	if !strings.Contains(diags[0].Message, "NewOrphan") || diags[0].Analyzer != "toolwired" {
		t.Fatalf("flagged the wrong constructor: %s", diags[0])
	}
}

func TestToolWiredCountsCrossPackageTestUse(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod": fixtureGomod,
		"internal/detectors/tool.go": `package detectors
type Tool interface{ Name() string }
func NewRemote() Tool { return nil }
`,
		"elsewhere_test.go": `package fix
import "example.com/fix/internal/detectors"
import "testing"
func TestRemote(t *testing.T) { detectors.NewRemote() }
`,
	})
	if diags := mustRun(t, loadFixture(t, root), []*Analyzer{ToolWired}, Options{}); len(diags) != 0 {
		t.Fatalf("cross-package test call not recognised: %v", diags)
	}
}

func TestRandImportFlagsOutsideStats(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod": fixtureGomod,
		"internal/stats/rng.go": `package stats
import "math/rand"
var _ = rand.Int
`,
		"internal/bad/bad.go": `package bad
import "math/rand/v2"
var _ = rand.Int
`,
	})
	diags := mustRun(t, loadFixture(t, root), []*Analyzer{RandImport}, Options{})
	if len(diags) != 1 {
		t.Fatalf("diagnostics = %v, want exactly the import outside internal/stats", diags)
	}
	if !strings.Contains(diags[0].Message, "internal/bad") || diags[0].Analyzer != "randimport" {
		t.Fatalf("unexpected diagnostic: %s", diags[0])
	}
}

// TestNoDefaultMux exercises the DefaultServeMux analyzer: every way of
// reaching the global mux is flagged in non-test files, renamed imports
// are followed, and explicit-mux code plus test files stay clean.
func TestNoDefaultMux(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod": fixtureGomod,
		"bad/bad.go": `package bad
import "net/http"
func f() {
	http.HandleFunc("/x", nil)
	http.Handle("/y", nil)
	_ = http.DefaultServeMux
	_ = http.ListenAndServe(":0", nil)
	_ = http.ListenAndServeTLS(":0", "c", "k", nil)
}
`,
		"renamed/renamed.go": `package renamed
import web "net/http"
func f() { web.HandleFunc("/x", nil) }
`,
		"clean/clean.go": `package clean
import "net/http"
func f() {
	mux := http.NewServeMux()
	mux.HandleFunc("/x", func(http.ResponseWriter, *http.Request) {})
	_ = http.ListenAndServe(":0", mux)
}
`,
		"exempt/exempt_test.go": `package exempt
import "net/http"
func f() { http.HandleFunc("/x", nil) }
`,
	})
	diags := mustRun(t, loadFixture(t, root), []*Analyzer{NoDefaultMux}, Options{})
	var bad, renamed int
	for _, d := range diags {
		switch {
		case strings.Contains(d.Pos.Filename, "bad/bad.go"):
			bad++
		case strings.Contains(d.Pos.Filename, "renamed/renamed.go"):
			renamed++
		default:
			t.Errorf("false positive: %s", d)
		}
	}
	if bad != 5 {
		t.Errorf("bad.go produced %d findings, want 5:\n%v", bad, diags)
	}
	if renamed != 1 {
		t.Errorf("renamed import not followed (%d findings)", renamed)
	}
}

func TestCtxFirstFlagsBuriedContext(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod": fixtureGomod,
		"internal/harness/h.go": `package harness
import "context"
func RunCtx(ctx context.Context, n int) error { return nil }       // compliant
func Buried(n int, ctx context.Context) error { return nil }       // flagged
func unexported(n int, ctx context.Context) error { return nil }   // unexported: ignored
func NoContext(n int) error { return nil }                         // no context: ignored
type T struct{}
func (T) MethodBuried(name string, ctx context.Context) {}         // exported method: flagged
`,
		"internal/harness/h_test.go": `package harness
import "context"
func HelperBuried(n int, ctx context.Context) {} // test file: ignored
`,
		"internal/report/free.go": `package report
import "context"
func Elsewhere(n int, ctx context.Context) {} // outside the pipeline: ignored
`,
	})
	diags := mustRun(t, loadFixture(t, root), []*Analyzer{CtxFirst}, Options{})
	if len(diags) != 2 {
		t.Fatalf("diagnostics = %v, want Buried and MethodBuried", diags)
	}
	joined := joinMessages(diags)
	for _, want := range []string{"Buried", "MethodBuried"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("missing %s finding in:\n%s", want, joined)
		}
	}
}

func TestCompiledExecFlagsRawInterpreterCalls(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod": fixtureGomod,
		"internal/svclang/lang.go": `package svclang
type Service struct{}
type Request map[string]string
type Result struct{}
func Execute(s *Service, r Request) (Result, error) { return Result{}, nil }
func ExecuteInSession(s *Service, r Request, st *int) (Result, error) { return Result{}, nil }
func Analyze(s *Service) error { return nil }
`,
		"internal/detectors/d.go": `package detectors
import "example.com/fix/internal/svclang"
func probe(s *svclang.Service) {
	svclang.Execute(s, nil)           // flagged
	svclang.ExecuteInSession(s, nil, nil) // flagged
}
`,
		"internal/workload/w.go": `package workload
import "example.com/fix/internal/svclang"
func label(s *svclang.Service) { svclang.Analyze(s) } // flagged
`,
		"internal/detectors/d_test.go": `package detectors
import "example.com/fix/internal/svclang"
func helper(s *svclang.Service) { svclang.Execute(s, nil) } // test file: ignored
`,
		"internal/report/free.go": `package report
import "example.com/fix/internal/svclang"
func outside(s *svclang.Service) { svclang.Execute(s, nil) } // outside the execution path: ignored
`,
	})
	diags := mustRun(t, loadFixture(t, root), []*Analyzer{CompiledExec}, Options{})
	if len(diags) != 3 {
		t.Fatalf("diagnostics = %v, want the three raw calls", diags)
	}
	joined := joinMessages(diags)
	for _, want := range []string{"svclang.Execute", "svclang.ExecuteInSession", "svclang.Analyze"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("missing %s finding in:\n%s", want, joined)
		}
	}
}

func TestCompiledExecIgnoresEngineCalls(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod": fixtureGomod,
		"internal/harness/h.go": `package harness
import "example.com/fix/internal/svclang/compile"
func run(eng *compile.Engine) {
	eng.Execute(nil, nil)       // engine method, not the raw entry point
	eng.ExecuteInSession(nil, nil, nil)
	eng.Analyze(nil)
}
`,
		"internal/svclang/compile/engine.go": `package compile
type Engine struct{}
func (e *Engine) Execute(a, b any) {}
func (e *Engine) ExecuteInSession(a, b, c any) {}
func (e *Engine) Analyze(a any) {}
`,
	})
	if diags := mustRun(t, loadFixture(t, root), []*Analyzer{CompiledExec}, Options{}); len(diags) != 0 {
		t.Fatalf("engine-path calls flagged: %v", diags)
	}
}

// TestDetRandInterprocedural is the case the retired syntactic norawrand
// could not see: the nondeterminism hides behind a wrapper in another
// package, and the taint must flow through the call graph.
func TestDetRandInterprocedural(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod": fixtureGomod,
		"internal/util/clock.go": `package util
import "time"
func Stamp() int64 { return time.Now().UnixNano() } // tainted, but util is not deterministic: no finding here
func Pure(n int) int { return n * 2 }
`,
		"internal/harness/h.go": `package harness
import "example.com/fix/internal/util"
func run() int64 { return util.Stamp() } // flagged: first hop out of determinism
func ok() int   { return util.Pure(3) }
`,
		"internal/stats/s.go": `package stats
import "time"
func direct() { time.Sleep(time.Second) } // flagged: direct source call
func viaLocal() { local() }               // not flagged: local() owns the leak edge
func local() { direct() }                 // not flagged: direct() owns it
`,
		"internal/stats/s_test.go": `package stats
import "time"
var testStart = time.Now() // test file: free
`,
	})
	diags := mustRun(t, loadFixture(t, root), []*Analyzer{DetRand}, Options{})
	if len(diags) != 2 {
		t.Fatalf("diagnostics:\n%swant exactly the harness hop and the direct Sleep", joinMessages(diags))
	}
	joined := joinMessages(diags)
	for _, want := range []string{"util.Stamp, which reaches time.Now", "calls time.Sleep"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("missing %q in:\n%s", want, joined)
		}
	}
}

func TestDetRandAllowsSeededRand(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod": fixtureGomod,
		"internal/stats/rng.go": `package stats
import "math/rand"
func seeded(seed int64) int {
	r := rand.New(rand.NewSource(seed)) // explicit seed: deterministic, allowed
	return r.Int()
}
func global() int { return rand.Int() } // global generator: flagged
`,
	})
	diags := mustRun(t, loadFixture(t, root), []*Analyzer{DetRand}, Options{})
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "math/rand.Int") {
		t.Fatalf("diagnostics:\n%swant exactly the global rand.Int", joinMessages(diags))
	}
}

func TestDetRandMapIterationOrder(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod": fixtureGomod,
		"internal/stats/m.go": `package stats
import "sort"
func bad(m map[string]int) []int {
	var out []int
	for _, v := range m {
		out = append(out, v) // flagged: value order is map order
	}
	return out
}
func good(m map[string]int) []int {
	var keys []string
	for k := range m {
		keys = append(keys, k) // allowed: the sorted-keys idiom
	}
	sort.Strings(keys)
	var out []int
	for _, k := range keys {
		out = append(out, m[k])
	}
	return out
}
`,
	})
	diags := mustRun(t, loadFixture(t, root), []*Analyzer{DetRand}, Options{})
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "map-iteration order") {
		t.Fatalf("diagnostics:\n%swant exactly the unsorted append", joinMessages(diags))
	}
}

func TestCtxFlow(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod": fixtureGomod,
		"internal/service/s.go": `package service
import "context"
type job struct {
	ctx  context.Context // flagged: stored context
	name string
}
func handle(ctx context.Context) {
	sub := context.Background() // flagged: severs the caller's context
	_ = sub
}
func entry(ctx context.Context) {
	if ctx == nil {
		ctx = context.Background() // allowed: nil-defaulting the parameter
	}
	_ = ctx
}
func standalone() context.Context {
	return context.Background() // allowed: no inbound context to sever
}
`,
		"internal/service/s_test.go": `package service
import "context"
func helper(ctx context.Context) context.Context {
	return context.Background() // test file: free
}
`,
	})
	diags := mustRun(t, loadFixture(t, root), []*Analyzer{CtxFlow}, Options{})
	if len(diags) != 2 {
		t.Fatalf("diagnostics:\n%swant the stored field and the severing Background", joinMessages(diags))
	}
	joined := joinMessages(diags)
	for _, want := range []string{"struct field stores a context.Context", "discards the caller's cancellation"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("missing %q in:\n%s", want, joined)
		}
	}
}

func TestLockCopy(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod": fixtureGomod,
		"p/p.go": `package p
import "sync"
type guarded struct {
	mu sync.Mutex
	n  int
}
type wrapper struct{ g guarded }
func byValue(g guarded) {}        // flagged: parameter copies the mutex
func nested(w wrapper) {}         // flagged: transitive
func byPointer(g *guarded) {}     // allowed
func returned() guarded { return guarded{} } // flagged: result copies
func (g guarded) method() {}      // flagged: value receiver copies
func (g *guarded) ok() {}         // allowed
func slices(gs []guarded) {}      // allowed: slice is an indirection
`,
	})
	diags := mustRun(t, loadFixture(t, root), []*Analyzer{LockCopy}, Options{})
	if len(diags) != 4 {
		t.Fatalf("diagnostics:\n%swant byValue, nested, returned, method", joinMessages(diags))
	}
	for _, d := range diags {
		if !strings.Contains(d.Message, "sync.Mutex") {
			t.Fatalf("message does not name the lock: %s", d)
		}
	}
}

func TestLeakyGo(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod": fixtureGomod,
		"p/p.go": `package p
import (
	"context"
	"sync"
)
func leak() {
	go func() { // flagged: nothing can stop or observe it
		x := 0
		for {
			x++
		}
	}()
}
func viaChannel(stop chan struct{}) {
	go func() { // allowed: selects on stop
		for {
			select {
			case <-stop:
				return
			default:
			}
		}
	}()
}
func viaCtx(ctx context.Context) {
	go func() { // allowed: watches the context
		<-ctx.Done()
	}()
}
func viaWaitGroup(wg *sync.WaitGroup) {
	go func() { // allowed: signals completion
		defer wg.Done()
	}()
}
func worker(jobs chan int) {
	for range jobs {
	}
}
func viaNamedWorker(jobs chan int) {
	go worker(jobs) // allowed: the worker ranges its job channel
}
func spin() { for {} }
func viaNamedLeak() {
	go spin() // flagged: named function with no termination path
}
`,
	})
	diags := mustRun(t, loadFixture(t, root), []*Analyzer{LeakyGo}, Options{})
	if len(diags) != 2 {
		t.Fatalf("diagnostics:\n%swant exactly leak() and viaNamedLeak()", joinMessages(diags))
	}
}

func TestJudgeSyncReportsMissingEntry(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod": fixtureGomod,
		"internal/svclang/lang.go": `package svclang
type SinkKind int
const (
	SinkSQL SinkKind = iota + 1
	SinkXPath
	SinkHTML
)
type Builtin int
const (
	BuiltinConcat Builtin = iota + 1
	BuiltinTrim
	BuiltinUpper
)
type sinkJudge struct{ name string }
type builtinSpec struct{ mode int }
var sinkJudges = [SinkHTML + 1]sinkJudge{
	SinkSQL:   {name: "sql"},
	SinkXPath: {name: "xpath"},
	// SinkHTML missing: must be reported
}
var builtinSpecs = [BuiltinUpper + 1]builtinSpec{
	BuiltinConcat: {mode: 1},
	BuiltinTrim:   {mode: 2},
	BuiltinUpper:  {mode: 3},
}
`,
	})
	diags := mustRun(t, loadFixture(t, root), []*Analyzer{JudgeSync}, Options{})
	if len(diags) != 1 {
		t.Fatalf("diagnostics:\n%swant exactly the SinkHTML coverage gap", joinMessages(diags))
	}
	if !strings.Contains(diags[0].Message, "SinkHTML") || !strings.Contains(diags[0].Message, "sinkJudges") {
		t.Fatalf("wrong gap reported: %s", diags[0])
	}
}

func TestJudgeSyncReportsMissingTable(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod": fixtureGomod,
		"internal/svclang/lang.go": `package svclang
// sinkJudges and builtinSpecs are gone — e.g. renamed in a refactor.
type SinkKind int
const SinkSQL SinkKind = iota + 1
type Builtin int
const BuiltinConcat Builtin = iota + 1
`,
	})
	diags := mustRun(t, loadFixture(t, root), []*Analyzer{JudgeSync}, Options{})
	joined := joinMessages(diags)
	for _, want := range []string{"sinkJudges not found", "builtinSpecs not found"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("missing %q in:\n%s", want, joined)
		}
	}
}

func TestSuppression(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod": fixtureGomod,
		"internal/bad/bad.go": `package bad
import "math/rand/v2" //vdlint:ignore randimport exercising the suppression machinery
var _ = rand.Int
`,
		"internal/bad/stale.go": `package bad
//vdlint:ignore randimport nothing on the next line triggers this
var x = 1
`,
		"internal/bad/malformed.go": `package bad
//vdlint:ignore randimport
var y = 1
//vdlint:ignore nosuchanalyzer because reasons
var z = 1
`,
	})
	diags := mustRun(t, loadFixture(t, root), []*Analyzer{RandImport}, Options{})
	joined := joinMessages(diags)
	for _, want := range []string{
		"unused vdlint:ignore for randimport",
		"has no reason",
		"unknown analyzer nosuchanalyzer",
	} {
		if !strings.Contains(joined, want) {
			t.Fatalf("missing %q in:\n%s", want, joined)
		}
	}
	for _, d := range diags {
		if d.Analyzer == "randimport" {
			t.Fatalf("suppressed finding leaked through: %s", d)
		}
	}
}

func TestSuppressionUnusedNotReportedWhenAnalyzerSkipped(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod": fixtureGomod,
		"p/p.go": `package p
//vdlint:ignore detrand the analyzer is not running in this test
var x = 1
`,
	})
	if diags := mustRun(t, loadFixture(t, root), []*Analyzer{RandImport, DetRand}, Options{Only: []string{"randimport"}}); len(diags) != 0 {
		t.Fatalf("unused-suppression reported for an analyzer that did not run: %v", joinMessages(diags))
	}
}

// TestJSONStableAcrossWorkerCounts runs the full suite at one and four
// workers against a fixture with findings in several packages and
// requires byte-identical JSON.
func TestJSONStableAcrossWorkerCounts(t *testing.T) {
	files := map[string]string{
		"go.mod": fixtureGomod,
		"internal/a/a.go": `package a
import "math/rand/v2"
var _ = rand.Int
`,
		"internal/b/b.go": `package b
import "math/rand"
var _ = rand.Int
`,
		"internal/c/c.go": `package c
import "net/http"
func f() { http.HandleFunc("/", nil) }
`,
	}
	root := writeModule(t, files)
	var outputs [][]byte
	for _, workers := range []int{1, 4} {
		prog := loadFixture(t, root)
		diags := mustRun(t, prog, All(), Options{Workers: workers})
		if len(diags) == 0 {
			t.Fatal("fixture produced no findings; the stability test needs some")
		}
		var buf bytes.Buffer
		if err := WriteJSON(&buf, diags); err != nil {
			t.Fatal(err)
		}
		outputs = append(outputs, buf.Bytes())
	}
	if !bytes.Equal(outputs[0], outputs[1]) {
		t.Fatalf("JSON differs between workers=1 and workers=4:\n%s\n---\n%s", outputs[0], outputs[1])
	}
	var empty bytes.Buffer
	if err := WriteJSON(&empty, nil); err != nil || empty.String() != "[]\n" {
		t.Fatalf("empty diagnostics = %q, want []\\n", empty.String())
	}
}

// TestRepoSelfCheck runs the full analyzer suite against this module
// itself: the tier-1 gate `go run ./cmd/vdlint -json ./...` must be
// clean.
func TestRepoSelfCheck(t *testing.T) {
	prog, err := LoadWith(filepath.Join("..", ".."), fixtureOptions(t))
	if err != nil {
		t.Fatal(err)
	}
	if prog.ModulePath != "github.com/dsn2015/vdbench" {
		t.Fatalf("module path = %q", prog.ModulePath)
	}
	diags := mustRun(t, prog, All(), Options{})
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}
