package vdlint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeModule materialises a fixture module from a map of relative path
// to file contents and returns its root.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for rel, content := range files {
		path := filepath.Join(root, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

const fixtureGomod = "module example.com/fix\n\ngo 1.22\n"

func TestLoadGroupsPackages(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod":                         fixtureGomod,
		"a.go":                           "package fix\n",
		"internal/x/x.go":                "package x\n",
		"internal/x/x_test.go":           "package x\n",
		"internal/x/testdata/ignored.go": "this is not Go and must be skipped\n",
	})
	prog, err := Load(root)
	if err != nil {
		t.Fatal(err)
	}
	if prog.ModulePath != "example.com/fix" {
		t.Fatalf("module path = %q", prog.ModulePath)
	}
	if len(prog.Packages) != 2 {
		t.Fatalf("packages = %d, want 2", len(prog.Packages))
	}
	if prog.Packages[0].Path != "example.com/fix" || prog.Packages[1].Path != "example.com/fix/internal/x" {
		t.Fatalf("package paths = %q, %q", prog.Packages[0].Path, prog.Packages[1].Path)
	}
	if n := len(prog.Packages[1].Files); n != 2 {
		t.Fatalf("internal/x parsed %d files, want 2 (test file included, testdata skipped)", n)
	}
}

func TestToolWiredFlagsOrphanConstructor(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod": fixtureGomod,
		"internal/detectors/tool.go": `package detectors
type Tool interface{ Name() string }
func NewWired() Tool { return nil }
func NewOrphan() Tool { return nil }
func NewTested() (Tool, error) { return nil, nil }
func NewHelper() int { return 0 } // not a Tool constructor
func StandardSuite() []Tool { return []Tool{NewWired()} }
`,
		"internal/detectors/tool_test.go": `package detectors
import "testing"
func TestTested(t *testing.T) { NewTested() }
`,
	})
	prog, err := Load(root)
	if err != nil {
		t.Fatal(err)
	}
	diags := Run(prog, []*Analyzer{ToolWired})
	if len(diags) != 1 {
		t.Fatalf("diagnostics = %v, want exactly the orphan", diags)
	}
	if !strings.Contains(diags[0].Message, "NewOrphan") {
		t.Fatalf("flagged the wrong constructor: %s", diags[0])
	}
	if diags[0].Analyzer != "toolwired" {
		t.Fatalf("analyzer = %q", diags[0].Analyzer)
	}
}

func TestToolWiredCountsCrossPackageTestUse(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod": fixtureGomod,
		"internal/detectors/tool.go": `package detectors
type Tool interface{ Name() string }
func NewRemote() Tool { return nil }
`,
		"elsewhere_test.go": `package fix
import "example.com/fix/internal/detectors"
import "testing"
func TestRemote(t *testing.T) { detectors.NewRemote() }
`,
	})
	prog, err := Load(root)
	if err != nil {
		t.Fatal(err)
	}
	if diags := Run(prog, []*Analyzer{ToolWired}); len(diags) != 0 {
		t.Fatalf("cross-package test call not recognised: %v", diags)
	}
}

func TestRandImportFlagsOutsideStats(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod": fixtureGomod,
		"internal/stats/rng.go": `package stats
import "math/rand"
var _ = rand.Int
`,
		"internal/bad/bad.go": `package bad
import "math/rand/v2"
var _ = rand.Int
`,
	})
	prog, err := Load(root)
	if err != nil {
		t.Fatal(err)
	}
	diags := Run(prog, []*Analyzer{RandImport})
	if len(diags) != 1 {
		t.Fatalf("diagnostics = %v, want exactly the import outside internal/stats", diags)
	}
	if !strings.Contains(diags[0].Message, "internal/bad") || diags[0].Analyzer != "randimport" {
		t.Fatalf("unexpected diagnostic: %s", diags[0])
	}
}

// TestRepoSelfCheck runs the full analyzer suite against this module
// itself: the tier-1 gate `go run ./cmd/vdlint ./...` must be clean.
func TestRepoSelfCheck(t *testing.T) {
	prog, err := Load(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	if prog.ModulePath != "github.com/dsn2015/vdbench" {
		t.Fatalf("module path = %q", prog.ModulePath)
	}
	diags := Run(prog, All())
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}

// TestNoDefaultMux exercises the DefaultServeMux analyzer: every way of
// reaching the global mux is flagged in non-test files, renamed imports
// are followed, and explicit-mux code plus test files stay clean.
func TestNoDefaultMux(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod": fixtureGomod,
		"bad/bad.go": `package bad
import "net/http"
func f() {
	http.HandleFunc("/x", nil)
	http.Handle("/y", nil)
	_ = http.DefaultServeMux
	_ = http.ListenAndServe(":0", nil)
	_ = http.ListenAndServeTLS(":0", "c", "k", nil)
}
`,
		"renamed/renamed.go": `package renamed
import web "net/http"
func f() { web.HandleFunc("/x", nil) }
`,
		"clean/clean.go": `package clean
import "net/http"
func f() {
	mux := http.NewServeMux()
	mux.HandleFunc("/x", func(http.ResponseWriter, *http.Request) {})
	_ = http.ListenAndServe(":0", mux)
}
`,
		"exempt/exempt_test.go": `package exempt
import "net/http"
func f() { http.HandleFunc("/x", nil) }
`,
	})
	prog, err := Load(root)
	if err != nil {
		t.Fatal(err)
	}
	diags := Run(prog, []*Analyzer{NoDefaultMux})
	var bad, renamed int
	for _, d := range diags {
		if d.Analyzer != "nodefaultmux" {
			t.Fatalf("unexpected analyzer %q: %s", d.Analyzer, d)
		}
		switch {
		case strings.Contains(d.Pos.Filename, "bad/bad.go"):
			bad++
		case strings.Contains(d.Pos.Filename, "renamed/renamed.go"):
			renamed++
		default:
			t.Errorf("false positive: %s", d)
		}
	}
	if bad != 5 {
		t.Errorf("bad.go produced %d findings, want 5:\n%v", bad, diags)
	}
	if renamed != 1 {
		t.Errorf("renamed import not followed (%d findings)", renamed)
	}
}

func TestNoRawRandFlagsDeterministicPackages(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod": fixtureGomod,
		"internal/stats/bad_rand.go": `package stats
import "math/rand"
var x = rand.Int()
`,
		"internal/experiments/bad_clock.go": `package experiments
import "time"
func stamp() int64 { return time.Now().Unix() }
func wait() { time.Sleep(time.Second) }
`,
		// Duration arithmetic and time.Unix are pure — must not be flagged.
		"internal/harness/ok_time.go": `package harness
import "time"
const budget = 5 * time.Second
var epoch = time.Unix(0, 0)
`,
		// The wall clock is fine outside the deterministic packages.
		"internal/service/ok_clock.go": `package service
import "time"
func now() time.Time { return time.Now() }
`,
		// And fine in tests of deterministic packages.
		"internal/stats/clock_test.go": `package stats
import "time"
var testStart = time.Now()
`,
	})
	prog, err := Load(root)
	if err != nil {
		t.Fatal(err)
	}
	diags := Run(prog, []*Analyzer{NoRawRand})
	if len(diags) != 3 {
		t.Fatalf("diagnostics = %v, want rand import + Now + Sleep", diags)
	}
	joined := ""
	for _, d := range diags {
		joined += d.Message + "\n"
	}
	for _, want := range []string{"math/rand", "time.Now", "time.Sleep"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("missing %s finding in:\n%s", want, joined)
		}
	}
}

func TestNoRawRandRespectsImportRenames(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod": fixtureGomod,
		"internal/workpool/renamed.go": `package workpool
import clock "time"
func tick() { clock.Tick(clock.Second) }
`,
	})
	prog, err := Load(root)
	if err != nil {
		t.Fatal(err)
	}
	diags := Run(prog, []*Analyzer{NoRawRand})
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "time.Tick") {
		t.Fatalf("diagnostics = %v, want the renamed time.Tick", diags)
	}
}

func TestCtxFirstFlagsBuriedContext(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod": fixtureGomod,
		"internal/harness/h.go": `package harness
import "context"
func RunCtx(ctx context.Context, n int) error { return nil }       // compliant
func Buried(n int, ctx context.Context) error { return nil }       // flagged
func unexported(n int, ctx context.Context) error { return nil }   // unexported: ignored
func NoContext(n int) error { return nil }                         // no context: ignored
type T struct{}
func (T) MethodBuried(name string, ctx context.Context) {}         // exported method: flagged
`,
		"internal/harness/h_test.go": `package harness
import "context"
func HelperBuried(n int, ctx context.Context) {} // test file: ignored
`,
		"internal/report/free.go": `package report
import "context"
func Elsewhere(n int, ctx context.Context) {} // outside the pipeline: ignored
`,
	})
	prog, err := Load(root)
	if err != nil {
		t.Fatal(err)
	}
	diags := Run(prog, []*Analyzer{CtxFirst})
	if len(diags) != 2 {
		t.Fatalf("diagnostics = %v, want Buried and MethodBuried", diags)
	}
	joined := diags[0].Message + "\n" + diags[1].Message
	for _, want := range []string{"Buried", "MethodBuried"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("missing %s finding in:\n%s", want, joined)
		}
	}
}

func TestCtxFirstRespectsImportRenames(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod": fixtureGomod,
		"internal/service/s.go": `package service
import c "context"
func Renamed(n int, ctx c.Context) {}
`,
	})
	prog, err := Load(root)
	if err != nil {
		t.Fatal(err)
	}
	diags := Run(prog, []*Analyzer{CtxFirst})
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "Renamed") {
		t.Fatalf("diagnostics = %v, want the renamed-import context", diags)
	}
}

func TestCompiledExecFlagsRawInterpreterCalls(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod": fixtureGomod,
		"internal/svclang/lang.go": `package svclang
type Service struct{}
type Request map[string]string
type Result struct{}
func Execute(s *Service, r Request) (Result, error) { return Result{}, nil }
func ExecuteInSession(s *Service, r Request, st *int) (Result, error) { return Result{}, nil }
func Analyze(s *Service) error { return nil }
`,
		"internal/detectors/d.go": `package detectors
import "example.com/fix/internal/svclang"
func probe(s *svclang.Service) {
	svclang.Execute(s, nil)           // flagged
	svclang.ExecuteInSession(s, nil, nil) // flagged
}
`,
		"internal/workload/w.go": `package workload
import "example.com/fix/internal/svclang"
func label(s *svclang.Service) { svclang.Analyze(s) } // flagged
`,
		"internal/detectors/d_test.go": `package detectors
import "example.com/fix/internal/svclang"
func helper(s *svclang.Service) { svclang.Execute(s, nil) } // test file: ignored
`,
		"internal/report/free.go": `package report
import "example.com/fix/internal/svclang"
func outside(s *svclang.Service) { svclang.Execute(s, nil) } // outside the execution path: ignored
`,
	})
	prog, err := Load(root)
	if err != nil {
		t.Fatal(err)
	}
	diags := Run(prog, []*Analyzer{CompiledExec})
	if len(diags) != 3 {
		t.Fatalf("diagnostics = %v, want the three raw calls", diags)
	}
	joined := ""
	for _, d := range diags {
		joined += d.Message + "\n"
	}
	for _, want := range []string{"svclang.Execute", "svclang.ExecuteInSession", "svclang.Analyze"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("missing %s finding in:\n%s", want, joined)
		}
	}
}

func TestCompiledExecIgnoresEngineCalls(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod": fixtureGomod,
		"internal/harness/h.go": `package harness
import "example.com/fix/internal/svclang/compile"
func run(eng *compile.Engine) {
	eng.Execute(nil, nil)       // engine method, not the raw entry point
	eng.ExecuteInSession(nil, nil, nil)
	eng.Analyze(nil)
}
`,
		"internal/svclang/compile/engine.go": `package compile
type Engine struct{}
func (e *Engine) Execute(a, b any) {}
func (e *Engine) ExecuteInSession(a, b, c any) {}
func (e *Engine) Analyze(a any) {}
`,
	})
	prog, err := Load(root)
	if err != nil {
		t.Fatal(err)
	}
	if diags := Run(prog, []*Analyzer{CompiledExec}); len(diags) != 0 {
		t.Fatalf("engine-path calls flagged: %v", diags)
	}
}
