package vdlint

import (
	"go/token"
	"strings"
)

// suppressAnalyzer is the pseudo-analyzer name under which the driver
// reports problems with suppression comments themselves. It cannot be
// suppressed.
const suppressAnalyzer = "suppress"

// suppression is one parsed //vdlint:ignore comment.
//
// Syntax:
//
//	//vdlint:ignore analyzer[,analyzer...] reason text
//
// The comment suppresses matching diagnostics on its own line and on the
// line immediately below (so it can trail the offending code or sit
// above it). A reason is mandatory; a suppression that matches nothing
// its analyzers reported is itself diagnosed, so stale ignores cannot
// accumulate.
type suppression struct {
	pos       token.Position // root-relative position of the comment
	analyzers []string
	reason    string
	used      bool
}

// parseSuppressions scans every file of the program once (files shared
// between a primary and its augmented unit are visited once) and returns
// the suppressions plus malformed-comment diagnostics.
func parseSuppressions(prog *Program, known map[string]bool) ([]*suppression, []Diagnostic) {
	var sups []*suppression
	var diags []Diagnostic
	seenFile := map[string]bool{}
	for _, u := range prog.Packages {
		for _, f := range u.Files {
			name := prog.filename(f)
			if seenFile[name] {
				continue
			}
			seenFile[name] = true
			for _, group := range f.Comments {
				for _, c := range group.List {
					rest, ok := strings.CutPrefix(c.Text, "//vdlint:ignore")
					if !ok {
						continue
					}
					pos := prog.Fset.Position(c.Pos())
					pos.Filename = prog.relFile(pos.Filename)
					report := func(msg string) {
						diags = append(diags, Diagnostic{Pos: pos, Analyzer: suppressAnalyzer, Message: msg})
					}
					// The golden corpus carries expectation comments on
					// the same line; they are not part of the reason.
					if i := strings.Index(rest, "// want"); i >= 0 {
						rest = rest[:i]
					}
					rest = strings.TrimSpace(rest)
					names, reason, _ := strings.Cut(rest, " ")
					reason = strings.TrimSpace(reason)
					if names == "" {
						report("vdlint:ignore needs an analyzer name and a reason")
						continue
					}
					var list []string
					bad := false
					for _, n := range strings.Split(names, ",") {
						if !known[n] {
							report("vdlint:ignore names unknown analyzer " + strings.TrimSpace(n))
							bad = true
							break
						}
						list = append(list, n)
					}
					if bad {
						continue
					}
					if reason == "" {
						report("vdlint:ignore " + names + " has no reason; say why the finding is acceptable")
						continue
					}
					sups = append(sups, &suppression{pos: pos, analyzers: list, reason: reason})
				}
			}
		}
	}
	return sups, diags
}

// applySuppressions filters the diagnostics through the program's
// //vdlint:ignore comments and appends the suppression meta-diagnostics:
// malformed comments, and comments that ran but matched nothing.
func applySuppressions(prog *Program, byAnalyzer map[string][]Diagnostic, ran, known map[string]bool) []Diagnostic {
	sups, meta := parseSuppressions(prog, known)
	// Index: (file, line, analyzer) → suppressions covering that line.
	type key struct {
		file     string
		line     int
		analyzer string
	}
	idx := map[key][]*suppression{}
	for _, s := range sups {
		for _, a := range s.analyzers {
			idx[key{s.pos.Filename, s.pos.Line, a}] = append(idx[key{s.pos.Filename, s.pos.Line, a}], s)
			idx[key{s.pos.Filename, s.pos.Line + 1, a}] = append(idx[key{s.pos.Filename, s.pos.Line + 1, a}], s)
		}
	}
	var out []Diagnostic
	for name, diags := range byAnalyzer {
		for _, d := range diags {
			if matches := idx[key{d.Pos.Filename, d.Pos.Line, name}]; len(matches) > 0 {
				for _, s := range matches {
					s.used = true
				}
				continue
			}
			out = append(out, d)
		}
	}
	for _, s := range sups {
		if s.used {
			continue
		}
		// Only analyzers that actually ran can prove a suppression
		// unused; under -only/-skip the others get the benefit of the
		// doubt.
		anyRan := false
		for _, a := range s.analyzers {
			if ran[a] {
				anyRan = true
			}
		}
		if !anyRan {
			continue
		}
		meta = append(meta, Diagnostic{
			Pos:      s.pos,
			Analyzer: suppressAnalyzer,
			Message:  "unused vdlint:ignore for " + strings.Join(s.analyzers, ",") + "; the finding it excused is gone — delete the comment",
		})
	}
	return append(out, meta...)
}
