package vdlint

import (
	"go/ast"
	"go/types"
	"strings"
)

// DetRand is the interprocedural determinism-taint analyzer. The
// deterministic packages — the ones whose outputs must be byte-identical
// across runs and worker counts — must never reach a nondeterminism
// source: the wall clock (time.Now and friends), the globally seeded
// math/rand package-level functions, or map iteration feeding ordered
// output. Unlike the retired syntactic norawrand check, DetRand builds
// the module's static call graph from type information and propagates a
// "reaches nondeterminism" fact across package boundaries, so a rand
// call hidden behind an import rename, a wrapper function or a helper
// package two hops away is still caught, with the full call chain in the
// message.
//
// The taint stops at interface calls and function values (no points-to
// analysis) and does not enter the standard library: the sources are the
// explicit call sites listed below. context.WithTimeout and the rest of
// the context machinery therefore stay usable — deadlines are the
// sanctioned way for deterministic code to interact with time.
var DetRand = &Analyzer{
	Name: "detrand",
	Doc:  "deterministic packages must not reach time.Now/math.rand or emit map-iteration-ordered output, even through wrappers",
	Run:  runDetRand,
}

// deterministicPackages lists the module-relative package paths whose
// non-test code must be a pure function of explicit seeds and inputs.
var deterministicPackages = []string{
	"internal/harness",
	"internal/svclang",
	"internal/svclang/cfg",
	"internal/svclang/compile",
	"internal/stats",
	"internal/metricprop",
	"internal/experiments",
	"internal/workpool",
	"internal/dist",
}

// wallClockFuncs are the time-package functions that read or wait on the
// wall clock. Pure value constructors (time.Duration arithmetic,
// time.Unix) are fine.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true,
	"Sleep": true, "Tick": true, "After": true, "AfterFunc": true,
	"NewTimer": true, "NewTicker": true,
}

// detrandFact marks a function as reaching a nondeterminism source,
// carrying the call chain for the diagnostic.
type detrandFact struct {
	// Trace is the chain from the function to the source, e.g.
	// "stamp → clockNow → time.Now".
	Trace string
}

// detrandCall is one statically resolved call site inside a function.
type detrandCall struct {
	pos    ast.Node
	source string      // nonempty for a direct nondeterminism source
	callee *types.Func // module-internal static callee, if any
}

func runDetRand(pass *Pass) {
	if pass.Pkg.Kind != UnitPrimary {
		return // determinism is a property of shipped code; tests are free
	}
	info := pass.Pkg.TypesInfo
	prog := pass.Prog

	// Gather each declared function's resolved call sites.
	calls := map[*types.Func][]detrandCall{}
	var order []*types.Func // declaration order, for deterministic fixpoint
	for _, file := range pass.Pkg.Files {
		for _, d := range file.Decls {
			fn, ok := d.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			obj, _ := info.Defs[fn.Name].(*types.Func)
			if obj == nil {
				continue
			}
			order = append(order, obj)
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				callee := staticCallee(info, call)
				if callee == nil || callee.Pkg() == nil {
					return true
				}
				if src := nondetSource(callee); src != "" {
					calls[obj] = append(calls[obj], detrandCall{pos: call, source: src})
				} else if prog.isModulePath(callee.Pkg().Path()) {
					calls[obj] = append(calls[obj], detrandCall{pos: call, callee: callee})
				}
				return true
			})
		}
	}

	// Local fixpoint over this package's call edges; cross-package
	// callees resolve through facts, which dependency-ordered scheduling
	// has already completed.
	tainted := map[*types.Func]string{} // → trace
	traceOf := func(callee *types.Func) (string, bool) {
		if t, ok := tainted[callee]; ok {
			return t, true
		}
		if f, ok := pass.LookupFact(callee); ok {
			return f.(detrandFact).Trace, true
		}
		return "", false
	}
	for changed := true; changed; {
		changed = false
		for _, fn := range order {
			if _, done := tainted[fn]; done {
				continue
			}
			for _, c := range calls[fn] {
				if c.source != "" {
					tainted[fn] = c.source
					changed = true
					break
				}
				if c.callee == fn {
					continue
				}
				if t, ok := traceOf(c.callee); ok {
					tainted[fn] = clipTrace(funcDisplayName(c.callee) + " → " + t)
					changed = true
					break
				}
			}
		}
	}
	for _, fn := range order {
		if t, ok := tainted[fn]; ok {
			pass.ExportFact(fn, detrandFact{Trace: t})
		}
	}

	if !inPackageSet(pass, deterministicPackages) {
		return
	}
	// Report each first hop out of determinism: a direct source call, or
	// a call into a tainted function of a non-deterministic package.
	// Tainted callees inside deterministic packages get their own
	// diagnostic at their own leak edge, so each chain is reported once.
	detSet := map[string]bool{}
	for _, rel := range deterministicPackages {
		detSet[prog.ModulePath+"/"+rel] = true
	}
	for _, fn := range order {
		for _, c := range calls[fn] {
			switch {
			case c.source != "":
				pass.Reportf(c.pos.Pos(),
					"deterministic package %s calls %s; derive values from the campaign seed instead", pass.Pkg.Path, c.source)
			case c.callee != nil && !detSet[c.callee.Pkg().Path()]:
				if t, ok := traceOf(c.callee); ok {
					pass.Reportf(c.pos.Pos(),
						"deterministic package %s calls %s, which reaches %s", pass.Pkg.Path, funcDisplayName(c.callee), t)
				}
			}
		}
	}
	reportMapOrderedOutput(pass)
}

// nondetSource classifies a resolved callee as a nondeterminism source,
// returning a display name ("" if it is not one): wall-clock reads, and
// the globally seeded math/rand package-level functions. Explicitly
// seeded constructors (rand.New, rand.NewPCG, ...) and methods on
// *rand.Rand are deterministic given their seed and stay allowed — the
// stats.RNG wrapper is built on exactly that.
func nondetSource(fn *types.Func) string {
	pkg := fn.Pkg().Path()
	if fn.Type().(*types.Signature).Recv() != nil {
		return ""
	}
	switch pkg {
	case "time":
		if wallClockFuncs[fn.Name()] {
			return "time." + fn.Name()
		}
	case "math/rand", "math/rand/v2":
		if strings.HasPrefix(fn.Name(), "New") {
			return "" // seeded constructors: deterministic given their seed
		}
		return pkg + "." + fn.Name()
	}
	return ""
}

// clipTrace bounds a taint trace so diagnostics stay readable on deep
// call chains.
func clipTrace(t string) string {
	const max = 160
	if len(t) <= max {
		return t
	}
	return t[:max] + "…"
}

// reportMapOrderedOutput flags `for … range m` over a map inside a
// deterministic package when the loop body visibly emits in iteration
// order: sends on a channel, prints, or appends anything other than the
// bare key (the sorted-keys idiom — collect keys, sort, then iterate —
// appends exactly the key and stays allowed).
func reportMapOrderedOutput(pass *Pass) {
	info := pass.Pkg.TypesInfo
	for _, file := range pass.Pkg.Owned {
		ast.Inspect(file, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			if _, isMap := info.TypeOf(rng.X).Underlying().(*types.Map); !isMap {
				return true
			}
			var keyObj types.Object
			if id, ok := rng.Key.(*ast.Ident); ok {
				keyObj = info.Defs[id]
				if keyObj == nil {
					keyObj = info.Uses[id]
				}
			}
			ast.Inspect(rng.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.SendStmt:
					pass.Reportf(n.Pos(),
						"deterministic package %s sends map-iteration-ordered values; sort the keys first", pass.Pkg.Path)
				case *ast.CallExpr:
					if callee := staticCallee(info, n); callee != nil && callee.Pkg() != nil &&
						callee.Pkg().Path() == "fmt" && callee.Type().(*types.Signature).Recv() == nil {
						pass.Reportf(n.Pos(),
							"deterministic package %s prints in map-iteration order; sort the keys first", pass.Pkg.Path)
						return true
					}
					if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "append" {
						if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin && appendsBeyondKey(info, n, keyObj) {
							pass.Reportf(n.Pos(),
								"deterministic package %s appends in map-iteration order; collect and sort the keys, then iterate", pass.Pkg.Path)
						}
					}
				}
				return true
			})
			return true
		})
	}
}

// appendsBeyondKey reports whether the append call appends anything
// other than the range statement's own key variable.
func appendsBeyondKey(info *types.Info, call *ast.CallExpr, keyObj types.Object) bool {
	if keyObj == nil || len(call.Args) != 2 || call.Ellipsis.IsValid() {
		return true
	}
	id, ok := ast.Unparen(call.Args[1]).(*ast.Ident)
	return !ok || info.Uses[id] != keyObj
}
