package workpool

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestForEachCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 13} {
		for _, n := range []int{0, 1, 7, 100} {
			b := New(workers)
			counts := make([]atomic.Int32, max(n, 1))
			err := b.ForEach(n, func(_, i int) error {
				counts[i].Add(1)
				return nil
			})
			if err != nil {
				t.Fatalf("workers=%d n=%d: %v", workers, n, err)
			}
			for i := 0; i < n; i++ {
				if got := counts[i].Load(); got != 1 {
					t.Fatalf("workers=%d n=%d: index %d ran %d times", workers, n, i, got)
				}
			}
		}
	}
}

func TestForEachSerialBudgetRunsInline(t *testing.T) {
	b := New(1)
	var order []int
	err := b.ForEach(50, func(lane, i int) error {
		if lane != 0 {
			t.Fatalf("serial budget used lane %d", lane)
		}
		order = append(order, i) // no locking: must be single-goroutine
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("serial execution out of order at %d: %v", i, order)
		}
	}
}

func TestForEachLanesAreExclusive(t *testing.T) {
	// Two tasks in the same lane must never run concurrently: per-lane
	// scratch buffers rely on it.
	const workers = 4
	b := New(workers)
	busy := make([]atomic.Bool, workers)
	err := b.ForEach(200, func(lane, i int) error {
		if !busy[lane].CompareAndSwap(false, true) {
			return fmt.Errorf("lane %d reentered", lane)
		}
		defer busy[lane].Store(false)
		if lane < 0 || lane >= workers {
			return fmt.Errorf("lane %d out of range", lane)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestForEachReturnsLowestIndexError(t *testing.T) {
	b := New(1) // serial: both failures are recorded deterministically
	errA := errors.New("a")
	errB := errors.New("b")
	err := b.ForEach(10, func(_, i int) error {
		switch i {
		case 3:
			return errA
		case 7:
			return errB
		}
		return nil
	})
	if !errors.Is(err, errA) {
		t.Fatalf("err = %v, want the index-3 error", err)
	}
}

func TestForEachErrorStopsRemainingWork(t *testing.T) {
	b := New(2)
	var ran atomic.Int32
	boom := errors.New("boom")
	err := b.ForEach(1000, func(_, i int) error {
		ran.Add(1)
		if i == 0 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if got := ran.Load(); got == 1000 {
		t.Fatal("failure did not skip any remaining work")
	}
}

func TestNestedForEachDoesNotDeadlock(t *testing.T) {
	b := New(4)
	var total atomic.Int32
	err := b.ForEach(8, func(_, i int) error {
		// Each outer task fans out again on the same budget. With
		// caller-runs + try-acquire this runs inline when tokens are
		// gone, so it must always terminate.
		return b.ForEach(8, func(_, j int) error {
			total.Add(1)
			return nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if total.Load() != 64 {
		t.Fatalf("ran %d inner tasks, want 64", total.Load())
	}
}

func TestConcurrentForEachSharesBudget(t *testing.T) {
	const workers = 3
	b := New(workers)
	var live, peak atomic.Int32
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = b.ForEach(100, func(_, i int) error {
				n := live.Add(1)
				for {
					p := peak.Load()
					if n <= p || peak.CompareAndSwap(p, n) {
						break
					}
				}
				live.Add(-1)
				return nil
			})
		}()
	}
	wg.Wait()
	// Each concurrent ForEach caller is a worker of its own; helpers are
	// bounded by the shared token pool.
	maxLive := int32(4 + (workers - 1))
	if peak.Load() > maxLive {
		t.Fatalf("peak concurrency %d exceeds callers+tokens bound %d", peak.Load(), maxLive)
	}
}

func TestNewDefaultsAndWorkers(t *testing.T) {
	if New(0).Workers() < 1 {
		t.Fatal("New(0) produced an unusable budget")
	}
	if got := New(7).Workers(); got != 7 {
		t.Fatalf("Workers() = %d, want 7", got)
	}
}

// TestDistributedFanOutSharesBudget models the distributed execution
// topology on one Budget: several concurrent "shard executors" (worker
// processes co-hosted in one process, as the dist tests do) each run a
// campaign ForEach over tools that nests a per-tool ForEach over cases,
// while the coordinator's merge ForEach runs over result rows at the
// same time. Three levels of fan-out sharing one token pool must
// terminate (caller-runs + try-acquire), cover every index, and stay
// within the callers+tokens concurrency bound.
func TestDistributedFanOutSharesBudget(t *testing.T) {
	const (
		workers = 3
		shards  = 4
		tools   = 4
		cases   = 8
		rows    = 16
	)
	b := New(workers)
	var cells, merged atomic.Int32
	var live, peak atomic.Int32
	enter := func() {
		n := live.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		live.Add(-1)
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		var wg sync.WaitGroup
		for s := 0; s < shards; s++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				// A shard execution: campaign fan-out over tools, each
				// tool fanning out again over its case range.
				_ = b.ForEach(tools, func(_, _ int) error {
					return b.ForEach(cases, func(_, _ int) error {
						enter()
						cells.Add(1)
						return nil
					})
				})
			}()
		}
		// The coordinator merge runs concurrently with the shard work.
		_ = b.ForEach(rows, func(_, _ int) error {
			enter()
			merged.Add(1)
			return nil
		})
		wg.Wait()
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("nested distributed fan-out deadlocked")
	}

	if got := cells.Load(); got != shards*tools*cases {
		t.Fatalf("executed %d cells, want %d", got, shards*tools*cases)
	}
	if got := merged.Load(); got != rows {
		t.Fatalf("merged %d rows, want %d", got, rows)
	}
	// shards executors + 1 merge caller are workers of their own; helper
	// goroutines are bounded by the shared token pool.
	if maxLive := int32(shards + 1 + (workers - 1)); peak.Load() > maxLive {
		t.Fatalf("peak concurrency %d exceeds callers+tokens bound %d", peak.Load(), maxLive)
	}
}
