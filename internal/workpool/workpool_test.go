package workpool

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestForEachCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 13} {
		for _, n := range []int{0, 1, 7, 100} {
			b := New(workers)
			counts := make([]atomic.Int32, max(n, 1))
			err := b.ForEach(n, func(_, i int) error {
				counts[i].Add(1)
				return nil
			})
			if err != nil {
				t.Fatalf("workers=%d n=%d: %v", workers, n, err)
			}
			for i := 0; i < n; i++ {
				if got := counts[i].Load(); got != 1 {
					t.Fatalf("workers=%d n=%d: index %d ran %d times", workers, n, i, got)
				}
			}
		}
	}
}

func TestForEachSerialBudgetRunsInline(t *testing.T) {
	b := New(1)
	var order []int
	err := b.ForEach(50, func(lane, i int) error {
		if lane != 0 {
			t.Fatalf("serial budget used lane %d", lane)
		}
		order = append(order, i) // no locking: must be single-goroutine
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("serial execution out of order at %d: %v", i, order)
		}
	}
}

func TestForEachLanesAreExclusive(t *testing.T) {
	// Two tasks in the same lane must never run concurrently: per-lane
	// scratch buffers rely on it.
	const workers = 4
	b := New(workers)
	busy := make([]atomic.Bool, workers)
	err := b.ForEach(200, func(lane, i int) error {
		if !busy[lane].CompareAndSwap(false, true) {
			return fmt.Errorf("lane %d reentered", lane)
		}
		defer busy[lane].Store(false)
		if lane < 0 || lane >= workers {
			return fmt.Errorf("lane %d out of range", lane)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestForEachReturnsLowestIndexError(t *testing.T) {
	b := New(1) // serial: both failures are recorded deterministically
	errA := errors.New("a")
	errB := errors.New("b")
	err := b.ForEach(10, func(_, i int) error {
		switch i {
		case 3:
			return errA
		case 7:
			return errB
		}
		return nil
	})
	if !errors.Is(err, errA) {
		t.Fatalf("err = %v, want the index-3 error", err)
	}
}

func TestForEachErrorStopsRemainingWork(t *testing.T) {
	b := New(2)
	var ran atomic.Int32
	boom := errors.New("boom")
	err := b.ForEach(1000, func(_, i int) error {
		ran.Add(1)
		if i == 0 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if got := ran.Load(); got == 1000 {
		t.Fatal("failure did not skip any remaining work")
	}
}

func TestNestedForEachDoesNotDeadlock(t *testing.T) {
	b := New(4)
	var total atomic.Int32
	err := b.ForEach(8, func(_, i int) error {
		// Each outer task fans out again on the same budget. With
		// caller-runs + try-acquire this runs inline when tokens are
		// gone, so it must always terminate.
		return b.ForEach(8, func(_, j int) error {
			total.Add(1)
			return nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if total.Load() != 64 {
		t.Fatalf("ran %d inner tasks, want 64", total.Load())
	}
}

func TestConcurrentForEachSharesBudget(t *testing.T) {
	const workers = 3
	b := New(workers)
	var live, peak atomic.Int32
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = b.ForEach(100, func(_, i int) error {
				n := live.Add(1)
				for {
					p := peak.Load()
					if n <= p || peak.CompareAndSwap(p, n) {
						break
					}
				}
				live.Add(-1)
				return nil
			})
		}()
	}
	wg.Wait()
	// Each concurrent ForEach caller is a worker of its own; helpers are
	// bounded by the shared token pool.
	maxLive := int32(4 + (workers - 1))
	if peak.Load() > maxLive {
		t.Fatalf("peak concurrency %d exceeds callers+tokens bound %d", peak.Load(), maxLive)
	}
}

func TestNewDefaultsAndWorkers(t *testing.T) {
	if New(0).Workers() < 1 {
		t.Fatal("New(0) produced an unusable budget")
	}
	if got := New(7).Workers(); got != 7 {
		t.Fatalf("Workers() = %d, want 7", got)
	}
}
