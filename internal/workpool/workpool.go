// Package workpool provides the bounded worker budget shared by the
// deterministic parallel layers (stats bootstrap blocks, metricprop
// catalogue analysis, experiment fan-out). It deliberately contains no
// scheduling cleverness that could affect results: callers decide the
// task decomposition and where every task's output lands; the pool only
// decides *when* each task runs.
//
// The design is caller-runs with try-acquire: the goroutine that calls
// ForEach always executes tasks itself, and helper goroutines are added
// only when a budget token is free at that moment. Nested ForEach calls
// therefore never deadlock — a task that itself fans out simply runs its
// sub-tasks inline when the budget is exhausted — and the number of live
// worker goroutines per Budget never exceeds the configured size.
package workpool

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Budget is a counting worker budget. The zero value is not usable; use
// New. A Budget may be shared across concurrent and nested ForEach calls.
type Budget struct {
	// tokens holds workers-1 helper slots; the caller of ForEach is the
	// implicit extra worker, so total concurrency is bounded by workers.
	tokens  chan struct{}
	workers int
}

// New returns a budget of the given size. workers <= 0 selects
// runtime.GOMAXPROCS(0); workers == 1 yields a budget that never spawns
// a goroutine (ForEach runs inline, in index order).
func New(workers int) *Budget {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	b := &Budget{workers: workers, tokens: make(chan struct{}, workers-1)}
	for i := 0; i < workers-1; i++ {
		b.tokens <- struct{}{}
	}
	return b
}

// Workers returns the budget size.
func (b *Budget) Workers() int { return b.workers }

// ForEach runs fn for every index in [0, n), distributing indices over
// the calling goroutine and up to Workers()-1 helpers. fn receives the
// index and a lane number in [0, Workers()): each lane processes its
// indices sequentially, so per-lane scratch state (indexed by lane)
// needs no locking. Lane 0 is always the caller.
//
// After the first fn error, remaining unclaimed indices are skipped and
// the recorded error with the lowest index is returned. Callers that
// need deterministic outputs must write each index's result into a
// dedicated slot; ForEach guarantees nothing about completion order.
func (b *Budget) ForEach(n int, fn func(lane, i int) error) error {
	if n <= 0 {
		return nil
	}
	var next atomic.Int64
	var failed atomic.Bool
	errs := make([]error, n)
	runLane := func(lane int) {
		for {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			if failed.Load() {
				continue // drain remaining indices without running them
			}
			if err := fn(lane, i); err != nil {
				errs[i] = err
				failed.Store(true)
			}
		}
	}

	// Spawn helpers only for tokens that are free right now; never block
	// waiting for one (a nested ForEach would otherwise deadlock against
	// its own ancestors holding the tokens).
	var wg sync.WaitGroup
	maxHelpers := n - 1
	if maxHelpers > b.workers-1 {
		maxHelpers = b.workers - 1
	}
	helpers := 0
	for helpers < maxHelpers {
		select {
		case <-b.tokens:
			helpers++
			wg.Add(1)
			go func(lane int) {
				defer wg.Done()
				defer func() { b.tokens <- struct{}{} }()
				runLane(lane)
			}(helpers)
		default:
			maxHelpers = helpers // budget exhausted; stop trying
		}
	}
	runLane(0)
	wg.Wait()

	if failed.Load() {
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
	}
	return nil
}
