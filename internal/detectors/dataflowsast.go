package detectors

import (
	"fmt"
	"sort"

	"github.com/dsn2015/vdbench/internal/dataflow"
	"github.com/dsn2015/vdbench/internal/stats"
	"github.com/dsn2015/vdbench/internal/svclang"
	"github.com/dsn2015/vdbench/internal/svclang/cfg"
	"github.com/dsn2015/vdbench/internal/workload"
)

// DataflowSASTConfig configures the CFG-based taint analyser. It carries
// every precision knob of the AST walker (the two engines are report-
// identical at shared settings — TestDataflowMatchesWalker pins this) plus
// one capability only a CFG engine can express.
type DataflowSASTConfig struct {
	TaintSASTConfig

	// PathSensitive: the engine interprets branch conditions along CFG
	// edges — a variable that passed matches()/eq() validation is clean on
	// the holding edge, and edges contradicting a constant condition are
	// infeasible. This refines taint per path, which the AST walker's
	// joined-environment traversal cannot express; it only ever removes
	// reports, never adds them.
	PathSensitive bool
}

// dataflowSAST is a flow-sensitive taint analyser built the way industrial
// SAST engines are: the service is lowered to a basic-block CFG
// (internal/svclang/cfg) and taint facts are propagated to a worklist
// fixpoint (internal/dataflow) with joins at merge points and convergence
// around loops, instead of the walker's fixed three-pass widening.
type dataflowSAST struct {
	cfg DataflowSASTConfig
	// cache, when non-nil, memoises the lowered CFG per (service,
	// options) across every cache-bound tool in a campaign. nil builds
	// directly; reports are identical either way.
	cache *cfg.Cache
}

var _ Tool = (*dataflowSAST)(nil)
var _ CompileCacheable = (*dataflowSAST)(nil)

// NewDataflowSAST builds a CFG-based static taint analyser with the given
// configuration.
func NewDataflowSAST(config DataflowSASTConfig) Tool {
	return &dataflowSAST{cfg: config}
}

// CompileCacheable is implemented by tools that lower services through
// internal/svclang/cfg and can share one per-campaign compile cache. The
// harness rebinds such tools before a campaign so the parse/lowering work
// for a case happens once, not once per tool.
type CompileCacheable interface {
	// WithCompileCache returns a copy of the tool bound to cc. The
	// receiver is not mutated and the copy's reports are identical; only
	// redundant CFG construction is shared.
	WithCompileCache(cc *cfg.Cache) Tool
}

// WithCompileCache implements CompileCacheable.
func (d *dataflowSAST) WithCompileCache(cc *cfg.Cache) Tool {
	clone := *d
	clone.cache = cc
	return &clone
}

func (d *dataflowSAST) Name() string { return d.cfg.Name }

func (d *dataflowSAST) Class() Class { return ClassSAST }

// taintFact is the dataflow fact: live marks reachable-so-far code (the
// lattice bottom is the unreached fact), vars is the abstract variable
// environment.
type taintFact struct {
	live bool
	vars absEnv
}

// taintLattice is the join-semilattice over taintFact. Facts are treated
// as immutable: Join returns fresh state and the transfer function clones
// before mutating.
type taintLattice struct{}

var _ dataflow.Lattice[taintFact] = taintLattice{}

func (taintLattice) Bottom() taintFact { return taintFact{} }

func (taintLattice) Join(a, b taintFact) taintFact {
	switch {
	case !a.live:
		return b
	case !b.live:
		return a
	}
	vars := a.vars.clone()
	vars.joinWith(b.vars)
	return taintFact{live: true, vars: vars}
}

func (taintLattice) Equal(a, b taintFact) bool {
	if a.live != b.live {
		return false
	}
	if !a.live {
		return true
	}
	// Missing keys read as the zero value, so {x: clean} and {} are the
	// same environment.
	for k, v := range a.vars {
		if b.vars[k] != v {
			return false
		}
	}
	for k, v := range b.vars {
		if a.vars[k] != v {
			return false
		}
	}
	return true
}

// Analyze implements Tool.
func (d *dataflowSAST) Analyze(cs workload.Case, _ *stats.RNG) ([]Report, error) {
	svc := cs.Service
	if svc == nil {
		return nil, fmt.Errorf("detectors: %s: nil service", d.cfg.Name)
	}
	g := d.cache.Build(svc, cfg.Options{
		PruneConstantBranches: d.cfg.PruneDeadBranches,
		SkipLoops:             !d.cfg.TrackLoops,
	})
	entry := make(absEnv, len(svc.Params))
	for _, p := range svc.Params {
		entry[p] = absVal{dangerous: allKindsMask()}
	}
	run := &dataflowRun{tool: d, svc: svc, found: map[int]Report{}, store: absEnv{}}
	// Stateful services get a second pass, like the walker: a load in
	// request N observes what request N-1 stored, so pass 2 reads the
	// store image accumulated by pass 1. Within a pass the store snapshot
	// is fixed (writes land in the next pass's image), which keeps the
	// transfer function monotone during the solve.
	passes := 1
	if d.cfg.TrackStores && svc.UsesStore() {
		passes = 2
	}
	for i := 0; i < passes; i++ {
		run.nextStore = run.store.clone()
		dataflow.Solve[taintFact](g, taintLattice{},
			taintFact{live: true, vars: entry.clone()},
			func(n int, in taintFact) taintFact {
				return run.transfer(g.Blocks[n], in)
			})
		run.store = run.nextStore
	}
	reports := make([]Report, 0, len(run.found))
	for _, r := range run.found {
		reports = append(reports, r)
	}
	sort.Slice(reports, func(i, j int) bool { return reports[i].SinkID < reports[j].SinkID })
	return reports, nil
}

// dataflowRun is the per-analysis state shared across solver passes.
type dataflowRun struct {
	tool  *dataflowSAST
	svc   *svclang.Service
	found map[int]Report
	// store is the read snapshot for the current pass; nextStore
	// accumulates writes (weak joins) for the following pass.
	store     absEnv
	nextStore absEnv
}

// transfer interprets one basic block. Sinks are recorded as a side
// effect with first-report-wins deduplication: the solver's reverse-
// postorder worklist evaluates each block first with its earliest
// (smallest) in-fact, so the recorded confidence matches the walker's
// first-pass recording.
func (r *dataflowRun) transfer(blk *cfg.Block, in taintFact) taintFact {
	if !in.live {
		return taintFact{}
	}
	env := in.vars.clone()
	for _, instr := range blk.Instrs {
		if instr.Refine != nil {
			if !r.refine(*instr.Refine, env) {
				return taintFact{} // infeasible edge: the path is dead
			}
			continue
		}
		switch v := instr.Stmt.(type) {
		case svclang.VarDecl:
			env[v.Name] = absVal{}
		case svclang.Assign:
			env[v.Name] = r.eval(v.Expr, env)
		case svclang.Store:
			if r.tool.cfg.TrackStores {
				val := r.eval(v.Expr, env)
				r.nextStore[v.Key] = r.nextStore[v.Key].join(val)
			}
		case svclang.Sink:
			val := r.eval(v.Expr, env)
			if val.dangerous&maskOf(v.Kind) != 0 {
				conf := 0.9
				if val.sanitized {
					conf = 0.6
				}
				if _, dup := r.found[v.ID]; !dup {
					r.found[v.ID] = Report{
						Service:    r.svc.Name,
						SinkID:     v.ID,
						Kind:       v.Kind,
						Confidence: conf,
					}
				}
			}
		case svclang.Reject:
			// Terminator: the block has no fallthrough successor (or, for
			// an always-rejecting loop body, flows its state to the loop
			// exit), so nothing to do here.
		}
	}
	return taintFact{live: true, vars: env}
}

func (r *dataflowRun) eval(e svclang.Expr, env absEnv) absVal {
	return evalExpr(r.tool.cfg.TaintSASTConfig, e, env, r.store)
}

// refine interprets a synthetic Refine instruction against env, mutating
// it in place. It returns false when the refinement proves the edge
// infeasible.
func (r *dataflowRun) refine(ref cfg.Refine, env absEnv) bool {
	cond, holds := ref.Cond, ref.Holds
	// Peel negations, flipping the polarity — same normalisation as the
	// walker's applyValidator.
	for {
		n, ok := cond.(svclang.Not)
		if !ok {
			break
		}
		cond = n.Inner
		holds = !holds
	}
	switch ref.Gate {
	case cfg.GateValidator:
		// Join-point narrowing after validate-and-reject: identical to the
		// walker's applyValidator, gated on the same knob.
		if !r.tool.cfg.ValidatorAware {
			return true
		}
		m, ok := cond.(svclang.Match)
		if !ok || !holds {
			return true
		}
		if id, ok := m.Expr.(svclang.Ident); ok {
			env[id.Name] = absVal{}
		}
	case cfg.GatePath:
		if !r.tool.cfg.PathSensitive {
			return true
		}
		switch c := cond.(type) {
		case svclang.BoolLit:
			// An edge contradicting a constant condition is infeasible.
			return c.Value == holds
		case svclang.Match:
			// On the holding edge the variable passed class validation:
			// its content is inert in every sink context the workload
			// uses. The failing edge tells us nothing (the value is merely
			// not all-in-class).
			if holds {
				if id, ok := c.Expr.(svclang.Ident); ok {
					env[id.Name] = absVal{}
				}
			}
		case svclang.Eq:
			// On the holding edge the variable equals a program literal,
			// so the attacker no longer controls it.
			if holds {
				if id, ok := c.Expr.(svclang.Ident); ok {
					env[id.Name] = absVal{}
				}
			}
		}
	}
	return true
}
