package detectors

import (
	"fmt"
	"sort"

	"github.com/dsn2015/vdbench/internal/dataflow"
	"github.com/dsn2015/vdbench/internal/stats"
	"github.com/dsn2015/vdbench/internal/svclang"
	"github.com/dsn2015/vdbench/internal/svclang/cfg"
	"github.com/dsn2015/vdbench/internal/workload"
)

// DataflowSASTConfig configures the CFG-based taint analyser. It carries
// every precision knob of the AST walker (the two engines are report-
// identical at shared settings — TestDataflowMatchesWalker pins this) plus
// one capability only a CFG engine can express.
type DataflowSASTConfig struct {
	TaintSASTConfig

	// PathSensitive: the engine interprets branch conditions along CFG
	// edges — a variable that passed matches()/eq() validation is clean on
	// the holding edge, and edges contradicting a constant condition are
	// infeasible. This refines taint per path, which the AST walker's
	// joined-environment traversal cannot express; it only ever removes
	// reports, never adds them.
	PathSensitive bool
}

// dataflowSAST is a flow-sensitive taint analyser built the way industrial
// SAST engines are: the service is lowered to a basic-block CFG
// (internal/svclang/cfg) and taint facts are propagated to a worklist
// fixpoint (internal/dataflow) with joins at merge points and convergence
// around loops, instead of the walker's fixed three-pass widening.
type dataflowSAST struct {
	cfg DataflowSASTConfig
	// cache, when non-nil, memoises the lowered CFG per (service,
	// options) across every cache-bound tool in a campaign. nil builds
	// directly; reports are identical either way.
	cache *cfg.Cache
}

var _ Tool = (*dataflowSAST)(nil)
var _ CompileCacheable = (*dataflowSAST)(nil)

// NewDataflowSAST builds a CFG-based static taint analyser with the given
// configuration.
func NewDataflowSAST(config DataflowSASTConfig) Tool {
	return &dataflowSAST{cfg: config}
}

// CompileCacheable is implemented by tools that lower services through
// internal/svclang/cfg and can share one per-campaign compile cache. The
// harness rebinds such tools before a campaign so the parse/lowering work
// for a case happens once, not once per tool.
type CompileCacheable interface {
	// WithCompileCache returns a copy of the tool bound to cc. The
	// receiver is not mutated and the copy's reports are identical; only
	// redundant CFG construction is shared.
	WithCompileCache(cc *cfg.Cache) Tool
}

// WithCompileCache implements CompileCacheable.
func (d *dataflowSAST) WithCompileCache(cc *cfg.Cache) Tool {
	clone := *d
	clone.cache = cc
	return &clone
}

func (d *dataflowSAST) Name() string { return d.cfg.Name }

func (d *dataflowSAST) Class() Class { return ClassSAST }

// taintFact is the dataflow fact: live marks reachable-so-far code (the
// lattice bottom is the unreached fact), vars is the abstract variable
// environment as a slot vector — one absVal (a kind bitset plus the
// sanitized flag) per declared name, indexed by the run's slot table.
// Vectors replace the per-fact maps this engine used to carry: joining
// and comparing become elementwise loops over a few machine words and
// cloning a fact is one slice copy instead of a map rebuild.
type taintFact struct {
	live bool
	vars []absVal
}

// taintLattice is the join-semilattice over taintFact. Facts are treated
// as immutable: Join returns fresh state and the transfer function clones
// before mutating.
type taintLattice struct{}

var _ dataflow.Lattice[taintFact] = taintLattice{}

func (taintLattice) Bottom() taintFact { return taintFact{} }

func (taintLattice) Join(a, b taintFact) taintFact {
	switch {
	case !a.live:
		return b
	case !b.live:
		return a
	}
	n := len(a.vars)
	if len(b.vars) > n {
		n = len(b.vars)
	}
	vars := make([]absVal, n)
	copy(vars, a.vars)
	for i, v := range b.vars {
		vars[i] = vars[i].join(v)
	}
	return taintFact{live: true, vars: vars}
}

func (taintLattice) Equal(a, b taintFact) bool {
	if a.live != b.live {
		return false
	}
	if !a.live {
		return true
	}
	// Slots past a vector's end read as the zero value, so a short vector
	// and its zero-padded extension are the same environment.
	long, short := a.vars, b.vars
	if len(short) > len(long) {
		long, short = short, long
	}
	for i, v := range short {
		if long[i] != v {
			return false
		}
	}
	for _, v := range long[len(short):] {
		if v != (absVal{}) {
			return false
		}
	}
	return true
}

// slotTable assigns a dense index to every name the service can bind:
// parameters first, then VarDecls in AST order. Validate guarantees the
// names are unique, so the assignment is total and collision-free.
func slotTable(svc *svclang.Service) map[string]int {
	slots := make(map[string]int, len(svc.Params)+4)
	for _, p := range svc.Params {
		slots[p] = len(slots)
	}
	var walk func(list []svclang.Stmt)
	walk = func(list []svclang.Stmt) {
		for _, st := range list {
			switch v := st.(type) {
			case svclang.VarDecl:
				if _, ok := slots[v.Name]; !ok {
					slots[v.Name] = len(slots)
				}
			case svclang.If:
				walk(v.Then)
				walk(v.Else)
			case svclang.Repeat:
				walk(v.Body)
			}
		}
	}
	walk(svc.Body)
	return slots
}

// storeSlotTable indexes every store key the service writes; a load of a
// never-written key reads the zero value, exactly as the map image did.
func storeSlotTable(svc *svclang.Service) map[string]int {
	slots := map[string]int{}
	var walk func(list []svclang.Stmt)
	walk = func(list []svclang.Stmt) {
		for _, st := range list {
			switch v := st.(type) {
			case svclang.Store:
				if _, ok := slots[v.Key]; !ok {
					slots[v.Key] = len(slots)
				}
			case svclang.If:
				walk(v.Then)
				walk(v.Else)
			case svclang.Repeat:
				walk(v.Body)
			}
		}
	}
	walk(svc.Body)
	return slots
}

// Analyze implements Tool.
func (d *dataflowSAST) Analyze(cs workload.Case, _ *stats.RNG) ([]Report, error) {
	svc := cs.Service
	if svc == nil {
		return nil, fmt.Errorf("detectors: %s: nil service", d.cfg.Name)
	}
	g := d.cache.Build(svc, cfg.Options{
		PruneConstantBranches: d.cfg.PruneDeadBranches,
		SkipLoops:             !d.cfg.TrackLoops,
	})
	run := &dataflowRun{
		tool:       d,
		svc:        svc,
		found:      map[int]Report{},
		slots:      slotTable(svc),
		storeSlots: storeSlotTable(svc),
	}
	run.store = make([]absVal, len(run.storeSlots))
	entry := make([]absVal, len(run.slots))
	for _, p := range svc.Params {
		entry[run.slots[p]] = absVal{dangerous: allKindsMask()}
	}
	// Stateful services get a second pass, like the walker: a load in
	// request N observes what request N-1 stored, so pass 2 reads the
	// store image accumulated by pass 1. Within a pass the store snapshot
	// is fixed (writes land in the next pass's image), which keeps the
	// transfer function monotone during the solve.
	passes := 1
	if d.cfg.TrackStores && svc.UsesStore() {
		passes = 2
	}
	for i := 0; i < passes; i++ {
		run.nextStore = append([]absVal(nil), run.store...)
		dataflow.Solve[taintFact](g, taintLattice{},
			taintFact{live: true, vars: append([]absVal(nil), entry...)},
			func(n int, in taintFact) taintFact {
				return run.transfer(g.Blocks[n], in)
			})
		run.store = run.nextStore
	}
	reports := make([]Report, 0, len(run.found))
	for _, r := range run.found {
		reports = append(reports, r)
	}
	sort.Slice(reports, func(i, j int) bool { return reports[i].SinkID < reports[j].SinkID })
	return reports, nil
}

// dataflowRun is the per-analysis state shared across solver passes.
type dataflowRun struct {
	tool  *dataflowSAST
	svc   *svclang.Service
	found map[int]Report
	// slots maps declared names to vars-vector indices; storeSlots maps
	// store keys to store-vector indices. Both are fixed per service.
	slots      map[string]int
	storeSlots map[string]int
	// store is the read snapshot for the current pass; nextStore
	// accumulates writes (weak joins) for the following pass.
	store     []absVal
	nextStore []absVal
	// curVars is the environment the statement being transferred reads
	// from; transfer sets it before interpreting a block (the absSource
	// seam shared with the walker's evalExpr).
	curVars []absVal
}

var _ absSource = (*dataflowRun)(nil)

func (r *dataflowRun) varAbs(name string) absVal {
	if i, ok := r.slots[name]; ok {
		return r.curVars[i]
	}
	return absVal{}
}

func (r *dataflowRun) storeAbs(key string) absVal {
	if i, ok := r.storeSlots[key]; ok {
		return r.store[i]
	}
	return absVal{}
}

// transfer interprets one basic block. Sinks are recorded as a side
// effect with first-report-wins deduplication: the solver's reverse-
// postorder worklist evaluates each block first with its earliest
// (smallest) in-fact, so the recorded confidence matches the walker's
// first-pass recording.
func (r *dataflowRun) transfer(blk *cfg.Block, in taintFact) taintFact {
	if !in.live {
		return taintFact{}
	}
	// Clone and zero-extend to the full slot count in one copy; slots past
	// the in-fact's end are the zero value by the lattice's convention.
	env := make([]absVal, len(r.slots))
	copy(env, in.vars)
	r.curVars = env
	for _, instr := range blk.Instrs {
		if instr.Refine != nil {
			if !r.refine(*instr.Refine, env) {
				return taintFact{} // infeasible edge: the path is dead
			}
			continue
		}
		switch v := instr.Stmt.(type) {
		case svclang.VarDecl:
			env[r.slots[v.Name]] = absVal{}
		case svclang.Assign:
			env[r.slots[v.Name]] = r.eval(v.Expr)
		case svclang.Store:
			if r.tool.cfg.TrackStores {
				val := r.eval(v.Expr)
				i := r.storeSlots[v.Key]
				r.nextStore[i] = r.nextStore[i].join(val)
			}
		case svclang.Sink:
			val := r.eval(v.Expr)
			if val.dangerous&maskOf(v.Kind) != 0 {
				conf := 0.9
				if val.sanitized {
					conf = 0.6
				}
				if _, dup := r.found[v.ID]; !dup {
					r.found[v.ID] = Report{
						Service:    r.svc.Name,
						SinkID:     v.ID,
						Kind:       v.Kind,
						Confidence: conf,
					}
				}
			}
		case svclang.Reject:
			// Terminator: the block has no fallthrough successor (or, for
			// an always-rejecting loop body, flows its state to the loop
			// exit), so nothing to do here.
		}
	}
	return taintFact{live: true, vars: env}
}

func (r *dataflowRun) eval(e svclang.Expr) absVal {
	return evalExpr(r.tool.cfg.TaintSASTConfig, e, r)
}

// setVar clears or sets a named slot in env; names without a slot (never
// declared) are impossible after Validate, so the lookup cannot miss.
func (r *dataflowRun) setVar(env []absVal, name string, v absVal) {
	env[r.slots[name]] = v
}

// refine interprets a synthetic Refine instruction against env, mutating
// it in place. It returns false when the refinement proves the edge
// infeasible.
func (r *dataflowRun) refine(ref cfg.Refine, env []absVal) bool {
	cond, holds := ref.Cond, ref.Holds
	// Peel negations, flipping the polarity — same normalisation as the
	// walker's applyValidator.
	for {
		n, ok := cond.(svclang.Not)
		if !ok {
			break
		}
		cond = n.Inner
		holds = !holds
	}
	switch ref.Gate {
	case cfg.GateValidator:
		// Join-point narrowing after validate-and-reject: identical to the
		// walker's applyValidator, gated on the same knob.
		if !r.tool.cfg.ValidatorAware {
			return true
		}
		m, ok := cond.(svclang.Match)
		if !ok || !holds {
			return true
		}
		if id, ok := m.Expr.(svclang.Ident); ok {
			r.setVar(env, id.Name, absVal{})
		}
	case cfg.GatePath:
		if !r.tool.cfg.PathSensitive {
			return true
		}
		switch c := cond.(type) {
		case svclang.BoolLit:
			// An edge contradicting a constant condition is infeasible.
			return c.Value == holds
		case svclang.Match:
			// On the holding edge the variable passed class validation:
			// its content is inert in every sink context the workload
			// uses. The failing edge tells us nothing (the value is merely
			// not all-in-class).
			if holds {
				if id, ok := c.Expr.(svclang.Ident); ok {
					r.setVar(env, id.Name, absVal{})
				}
			}
		case svclang.Eq:
			// On the holding edge the variable equals a program literal,
			// so the attacker no longer controls it.
			if holds {
				if id, ok := c.Expr.(svclang.Ident); ok {
					r.setVar(env, id.Name, absVal{})
				}
			}
		}
	}
	return true
}
