package detectors

import (
	"testing"

	"github.com/dsn2015/vdbench/internal/stats"
	"github.com/dsn2015/vdbench/internal/svclang"
	"github.com/dsn2015/vdbench/internal/workload"
)

// buildCase instantiates a named template as a labelled workload case.
func buildCase(t *testing.T, template string, kind svclang.SinkKind, vulnerable bool) workload.Case {
	t.Helper()
	tpl, ok := workload.TemplateByName(template)
	if !ok {
		t.Fatalf("unknown template %q", template)
	}
	svc, _ := tpl.Build("case", kind, vulnerable)
	truths, err := svclang.Analyze(svc)
	if err != nil {
		t.Fatalf("oracle: %v", err)
	}
	return workload.Case{Service: svc, Template: template, Difficulty: tpl.Difficulty, Truths: truths}
}

// reportsSink reports whether the tool flags the given sink of the case.
func reportsSink(t *testing.T, tool Tool, cs workload.Case, sinkID int) bool {
	t.Helper()
	reports, err := tool.Analyze(cs, stats.NewRNG(1))
	if err != nil {
		t.Fatalf("%s: %v", tool.Name(), err)
	}
	for _, r := range reports {
		if r.SinkID == sinkID {
			if r.Service != cs.Service.Name {
				t.Fatalf("%s: report names service %q, case is %q", tool.Name(), r.Service, cs.Service.Name)
			}
			if r.Confidence <= 0 || r.Confidence > 1 {
				t.Fatalf("%s: confidence %g out of (0,1]", tool.Name(), r.Confidence)
			}
			return true
		}
	}
	return false
}

func precise() Tool {
	return NewTaintSAST(TaintSASTConfig{
		Name: "precise", SinkAware: true, DiagonalAdequacy: true,
		ValidatorAware: true, PruneDeadBranches: true, TrackLoops: true,
	})
}

func aggressive() Tool {
	return NewTaintSAST(TaintSASTConfig{
		Name: "aggressive", SinkAware: true, DiagonalAdequacy: true, TrackLoops: true,
	})
}

func lite() Tool {
	return NewTaintSAST(TaintSASTConfig{Name: "lite", SinkAware: false})
}

func trueMatrix() Tool {
	return NewTaintSAST(TaintSASTConfig{
		Name: "truematrix", SinkAware: true,
		ValidatorAware: true, PruneDeadBranches: true, TrackLoops: true,
	})
}

func deepPT() Tool {
	return NewPentester(PentesterConfig{Name: "deep", ExploreInputs: true})
}

func fastPT() Tool {
	return NewPentester(PentesterConfig{Name: "fast", PayloadBudget: 1})
}

func TestTaintSASTDirectSplice(t *testing.T) {
	for _, kind := range svclang.AllSinkKinds() {
		vuln := buildCase(t, "direct-splice", kind, true)
		safe := buildCase(t, "direct-splice", kind, false)
		for _, tool := range []Tool{precise(), aggressive(), lite(), trueMatrix()} {
			if !reportsSink(t, tool, vuln, 0) {
				t.Errorf("%s missed direct %s splice", tool.Name(), kind)
			}
			if reportsSink(t, tool, safe, 0) {
				t.Errorf("%s flagged sanitized %s splice", tool.Name(), kind)
			}
		}
	}
}

func TestTaintSASTWrongSanitizer(t *testing.T) {
	vuln := buildCase(t, "wrong-sanitizer", svclang.SinkSQL, true)
	// Sink-aware tools catch the inadequate sanitizer.
	if !reportsSink(t, precise(), vuln, 0) {
		t.Error("sink-aware tool missed wrong sanitizer")
	}
	// The non-sink-aware tool trusts any sanitizer: false negative.
	if reportsSink(t, lite(), vuln, 0) {
		t.Error("non-sink-aware tool should trust the (wrong) sanitizer")
	}
}

func TestTaintSASTAccidentalSanitizer(t *testing.T) {
	safe := buildCase(t, "accidental-sanitizer", svclang.SinkSQL, false)
	if safe.Truths[0].Vulnerable {
		t.Fatal("precondition: accidental-sanitizer safe variant must be safe")
	}
	// Diagonal-matrix tool reports it: false positive by design.
	if !reportsSink(t, precise(), safe, 0) {
		t.Error("diagonal-matrix tool should flag accidentally-safe code")
	}
	// True-matrix tool knows better.
	if reportsSink(t, trueMatrix(), safe, 0) {
		t.Error("true-matrix tool should accept accidentally-safe code")
	}
}

func TestTaintSASTValidator(t *testing.T) {
	safe := buildCase(t, "validated-splice", svclang.SinkSQL, false)
	vuln := buildCase(t, "validated-splice", svclang.SinkSQL, true)
	// Validator-aware: no false positive on correct validation, and the
	// wrong-parameter bug is still caught.
	if reportsSink(t, precise(), safe, 0) {
		t.Error("validator-aware tool flagged validated input")
	}
	if !reportsSink(t, precise(), vuln, 0) {
		t.Error("validator-aware tool missed wrong-parameter validation bug")
	}
	// Non-aware tool reports both: the safe case is its false positive.
	if !reportsSink(t, aggressive(), safe, 0) {
		t.Error("non-validator-aware tool should flag validated input")
	}
}

func TestTaintSASTDeadBranch(t *testing.T) {
	safe := buildCase(t, "dead-sink", svclang.SinkCmd, false)
	if !reportsSink(t, aggressive(), safe, 0) {
		t.Error("non-pruning tool should flag the dead sink")
	}
	if reportsSink(t, precise(), safe, 0) {
		t.Error("pruning tool should skip the dead sink")
	}
}

func TestTaintSASTLoops(t *testing.T) {
	vuln := buildCase(t, "loop-flow", svclang.SinkHTML, true)
	if !reportsSink(t, precise(), vuln, 0) {
		t.Error("loop-tracking tool missed loop-carried taint")
	}
	if reportsSink(t, lite(), vuln, 0) {
		t.Error("non-loop tool should not see inside the loop")
	}
}

func TestTaintSASTLateValidation(t *testing.T) {
	vuln := buildCase(t, "late-validation", svclang.SinkSQL, true)
	safe := buildCase(t, "late-validation", svclang.SinkSQL, false)
	// Flow-sensitive analysis distinguishes order.
	if !reportsSink(t, precise(), vuln, 0) {
		t.Error("flow-sensitive tool missed sink-before-validation")
	}
	if reportsSink(t, precise(), safe, 0) {
		t.Error("flow-sensitive tool flagged validation-before-sink")
	}
}

func TestSignatureSASTProfile(t *testing.T) {
	sig := NewSignatureSAST("sig")
	// Catches direct splices.
	if !reportsSink(t, sig, buildCase(t, "direct-splice", svclang.SinkSQL, true), 0) {
		t.Error("signature tool missed direct splice")
	}
	// Trusts any sanitizer: misses wrong-sanitizer flows.
	if reportsSink(t, sig, buildCase(t, "wrong-sanitizer", svclang.SinkSQL, true), 0) {
		t.Error("signature tool should trust the wrong sanitizer (false negative)")
	}
	// Ignores validators: false positive on validated code.
	if !reportsSink(t, sig, buildCase(t, "validated-splice", svclang.SinkSQL, false), 0) {
		t.Error("signature tool should flag validated code")
	}
	// Ignores reachability: false positive on dead sink.
	if !reportsSink(t, sig, buildCase(t, "dead-sink", svclang.SinkSQL, false), 0) {
		t.Error("signature tool should flag the dead sink")
	}
	// Order-insensitive: flags the safe late-validation variant too.
	if !reportsSink(t, sig, buildCase(t, "late-validation", svclang.SinkSQL, false), 0) {
		t.Error("signature tool should flag validation-before-sink (order blind)")
	}
	// Sees through variable hops (flow-insensitive closure).
	if !reportsSink(t, sig, buildCase(t, "indirect-flow", svclang.SinkSQL, true), 0) {
		t.Error("signature tool missed indirect flow")
	}
}

func TestPentesterDirectSplice(t *testing.T) {
	for _, kind := range svclang.AllSinkKinds() {
		vuln := buildCase(t, "direct-splice", kind, true)
		safe := buildCase(t, "direct-splice", kind, false)
		if !reportsSink(t, deepPT(), vuln, 0) {
			t.Errorf("pentester missed direct %s splice", kind)
		}
		if reportsSink(t, deepPT(), safe, 0) {
			t.Errorf("pentester false-alarmed on sanitized %s splice", kind)
		}
	}
}

func TestPentesterGuardedSink(t *testing.T) {
	vuln := buildCase(t, "guarded-splice", svclang.SinkSQL, true)
	// Exploring tester reaches the guard (mode=alpha is in the benign
	// dictionary).
	if !reportsSink(t, deepPT(), vuln, 0) {
		t.Error("exploring pentester missed guarded sink")
	}
	// Non-exploring tester never satisfies the guard: false negative.
	if reportsSink(t, fastPT(), vuln, 0) {
		t.Error("non-exploring pentester should miss the guarded sink")
	}
}

func TestPentesterSilentSink(t *testing.T) {
	vuln := buildCase(t, "silent-sink", svclang.SinkSQL, true)
	if reportsSink(t, deepPT(), vuln, 0) {
		t.Error("error-based pentester cannot see silent sinks")
	}
	// Static analysis is unaffected by observability.
	if !reportsSink(t, precise(), vuln, 0) {
		t.Error("static tool should flag the silent sink")
	}
}

func TestPentesterValidatedInput(t *testing.T) {
	safe := buildCase(t, "validated-splice", svclang.SinkSQL, false)
	if reportsSink(t, deepPT(), safe, 0) {
		t.Error("pentester false-alarmed on validated input (rejections observable)")
	}
	vuln := buildCase(t, "validated-splice", svclang.SinkSQL, true)
	if !reportsSink(t, deepPT(), vuln, 0) {
		t.Error("pentester missed wrong-parameter validation bug")
	}
}

func TestPentesterDeadSink(t *testing.T) {
	safe := buildCase(t, "dead-sink", svclang.SinkSQL, false)
	if reportsSink(t, deepPT(), safe, 0) {
		t.Error("pentester cannot reach dead code; no report expected")
	}
}

func TestPentesterNeverFalseAlarms(t *testing.T) {
	// Differential confirmation: across the whole template library's safe
	// variants, the deep pentester must stay silent.
	for _, tpl := range workload.Templates() {
		for _, kind := range tpl.Kinds {
			cs := buildCase(t, tpl.Name, kind, false)
			reports, err := deepPT().Analyze(cs, stats.NewRNG(1))
			if err != nil {
				t.Fatal(err)
			}
			for _, r := range reports {
				for _, tr := range cs.Truths {
					if tr.SinkID == r.SinkID && !tr.Vulnerable {
						t.Errorf("pentester false positive on %s/%s sink %d", tpl.Name, kind, r.SinkID)
					}
				}
			}
		}
	}
}

func TestParametricRates(t *testing.T) {
	tool, err := NewExactRateTool("sim", 0.8, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	corpus, err := workload.Generate(workload.Config{Services: 400, TargetPrevalence: 0.5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(9)
	var tp, fnCount, fp, tn int
	for _, cs := range corpus.Cases {
		reports, err := tool.Analyze(cs, rng)
		if err != nil {
			t.Fatal(err)
		}
		flagged := map[int]bool{}
		for _, r := range reports {
			flagged[r.SinkID] = true
		}
		for _, tr := range cs.Truths {
			switch {
			case tr.Vulnerable && flagged[tr.SinkID]:
				tp++
			case tr.Vulnerable:
				fnCount++
			case flagged[tr.SinkID]:
				fp++
			default:
				tn++
			}
		}
	}
	gotTPR := float64(tp) / float64(tp+fnCount)
	gotFPR := float64(fp) / float64(fp+tn)
	if gotTPR < 0.72 || gotTPR > 0.88 {
		t.Errorf("parametric TPR = %g, want ~0.8", gotTPR)
	}
	if gotFPR < 0.05 || gotFPR > 0.16 {
		t.Errorf("parametric FPR = %g, want ~0.1", gotFPR)
	}
}

func TestParametricValidation(t *testing.T) {
	if _, err := NewParametric(ParametricConfig{Name: "", DefaultTPR: 0.5}); err == nil {
		t.Error("nameless tool accepted")
	}
	if _, err := NewExactRateTool("x", 1.5, 0); err == nil {
		t.Error("TPR > 1 accepted")
	}
	if _, err := NewExactRateTool("x", 0.5, -0.1); err == nil {
		t.Error("negative FPR accepted")
	}
	if _, err := NewParametric(ParametricConfig{
		Name: "x", TPR: map[workload.Difficulty]float64{workload.Easy: 2},
	}); err == nil {
		t.Error("per-difficulty TPR > 1 accepted")
	}
}

func TestParametricNeedsRNG(t *testing.T) {
	tool, err := NewExactRateTool("sim", 0.5, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	cs := buildCase(t, "direct-splice", svclang.SinkSQL, true)
	if _, err := tool.Analyze(cs, nil); err == nil {
		t.Fatal("nil RNG accepted by simulated tool")
	}
}

func TestToolsRejectNilService(t *testing.T) {
	for _, tool := range []Tool{precise(), NewSignatureSAST("s"), deepPT()} {
		if _, err := tool.Analyze(workload.Case{}, stats.NewRNG(1)); err == nil {
			t.Errorf("%s accepted a nil service", tool.Name())
		}
	}
}

func TestStandardSuite(t *testing.T) {
	tools, err := StandardSuite()
	if err != nil {
		t.Fatal(err)
	}
	if len(tools) != 9 {
		t.Fatalf("suite has %d tools, want 9", len(tools))
	}
	names := map[string]bool{}
	classes := map[Class]int{}
	for _, tool := range tools {
		if names[tool.Name()] {
			t.Fatalf("duplicate tool name %s", tool.Name())
		}
		names[tool.Name()] = true
		classes[tool.Class()]++
	}
	if classes[ClassSAST] != 6 || classes[ClassDAST] != 2 || classes[ClassSimulated] != 1 {
		t.Fatalf("class mix = %v", classes)
	}
}

func TestToolDeterminism(t *testing.T) {
	// Real tools must be deterministic regardless of the RNG.
	cs := buildCase(t, "double-param", svclang.SinkCmd, true)
	for _, tool := range []Tool{precise(), aggressive(), lite(), NewSignatureSAST("s"), deepPT(), fastPT()} {
		r1, err1 := tool.Analyze(cs, stats.NewRNG(1))
		r2, err2 := tool.Analyze(cs, stats.NewRNG(999))
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if len(r1) != len(r2) {
			t.Fatalf("%s nondeterministic", tool.Name())
		}
		for i := range r1 {
			if r1[i] != r2[i] {
				t.Fatalf("%s nondeterministic at %d", tool.Name(), i)
			}
		}
	}
}

func TestClassString(t *testing.T) {
	if ClassSAST.String() != "SAST" || ClassDAST.String() != "DAST" || ClassSimulated.String() != "simulated" {
		t.Fatal("class names wrong")
	}
	if Class(99).String() != "unknown" {
		t.Fatal("unknown class should render as unknown")
	}
}

func TestStoredFlowToolBehaviour(t *testing.T) {
	storeAware := NewTaintSAST(TaintSASTConfig{
		Name: "store-aware", SinkAware: true, DiagonalAdequacy: true,
		ValidatorAware: true, PruneDeadBranches: true, TrackLoops: true, TrackStores: true,
	})
	vuln := buildCase(t, "stored-splice", svclang.SinkHTML, true)
	safe := buildCase(t, "stored-splice", svclang.SinkHTML, false)
	if !vuln.Truths[0].Vulnerable || safe.Truths[0].Vulnerable {
		t.Fatal("precondition: stored-splice labels wrong")
	}
	// Store-tracking SAST finds the second-order flow; store-blind SAST
	// misses it.
	if !reportsSink(t, storeAware, vuln, 0) {
		t.Error("store-tracking SAST missed the stored flow")
	}
	if reportsSink(t, storeAware, safe, 0) {
		t.Error("store-tracking SAST flagged the sanitized stored flow")
	}
	if reportsSink(t, precise(), vuln, 0) {
		t.Error("store-blind SAST should miss the stored flow")
	}
	// The signature tool's flow-insensitive closure covers stores.
	if !reportsSink(t, NewSignatureSAST("sig"), vuln, 0) {
		t.Error("signature tool missed the stored flow")
	}
	// Stateless differential testing is blind to second-order flows: the
	// probe's own payload never reflects into the same response.
	if reportsSink(t, deepPT(), vuln, 0) {
		t.Error("stateless pentester cannot see second-order flows")
	}
}

func TestStatefulPentesterFindsStoredFlow(t *testing.T) {
	stateful := NewPentester(PentesterConfig{Name: "pt-stateful", ExploreInputs: true, Stateful: true})
	vuln := buildCase(t, "stored-splice", svclang.SinkHTML, true)
	safe := buildCase(t, "stored-splice", svclang.SinkHTML, false)
	if !reportsSink(t, stateful, vuln, 0) {
		t.Error("stateful pentester should stumble into the stored flow")
	}
	if reportsSink(t, stateful, safe, 0) {
		t.Error("stateful pentester false-alarmed on the sanitized stored flow")
	}
	// Statefulness must not change behaviour on stateless services.
	for _, tpl := range []string{"direct-splice", "validated-splice", "dead-sink"} {
		for _, vulnerable := range []bool{false, true} {
			cs := buildCase(t, tpl, svclang.SinkSQL, vulnerable)
			a := reportsSink(t, stateful, cs, 0)
			b := reportsSink(t, deepPT(), cs, 0)
			if a != b {
				t.Errorf("%s vulnerable=%v: stateful (%v) and stateless (%v) disagree on a stateless service",
					tpl, vulnerable, a, b)
			}
		}
	}
}

func TestStatefulPentesterNoFalseAlarmsOnSafeTemplates(t *testing.T) {
	stateful := NewPentester(PentesterConfig{Name: "pt-stateful", ExploreInputs: true, Stateful: true})
	for _, tpl := range workload.Templates() {
		for _, kind := range tpl.Kinds {
			cs := buildCase(t, tpl.Name, kind, false)
			reports, err := stateful.Analyze(cs, stats.NewRNG(1))
			if err != nil {
				t.Fatal(err)
			}
			for _, r := range reports {
				for _, tr := range cs.Truths {
					if tr.SinkID == r.SinkID && !tr.Vulnerable {
						t.Errorf("stateful pentester FP on %s/%s sink %d", tpl.Name, kind, r.SinkID)
					}
				}
			}
		}
	}
}
