// Package detectors implements the vulnerability detection tools the
// benchmark evaluates. Three families are provided:
//
//   - a configurable static taint analyser (taintSAST) whose imprecision
//     knobs reproduce the classic false-positive/false-negative mechanisms
//     of real static analysis tools;
//   - a signature-based static tool (signatureSAST) modelling grep-like
//     scanners with flow-insensitive matching;
//   - a differential penetration tester (pentester) that attacks services
//     black-box with payload dictionaries and confirms findings by
//     structure deviation, as error-based dynamic tools do;
//   - parametric simulated tools whose per-difficulty detection
//     probabilities are set directly, used where experiments need exact
//     control of intrinsic tool quality (e.g. prevalence sweeps).
//
// All tools implement the same Tool interface: they receive a labelled
// workload case and return sink-level reports. Real tools never look at
// the labels; the parametric simulators do (that is their purpose).
package detectors

import (
	"context"
	"errors"

	"github.com/dsn2015/vdbench/internal/stats"
	"github.com/dsn2015/vdbench/internal/svclang"
	"github.com/dsn2015/vdbench/internal/svclang/compile"
	"github.com/dsn2015/vdbench/internal/workload"
)

// Report is one tool finding: "sink SinkID of service Service is
// vulnerable".
type Report struct {
	// Service names the service the finding is in.
	Service string
	// SinkID identifies the sink within the service.
	SinkID int
	// Kind is the vulnerability class reported.
	Kind svclang.SinkKind
	// Confidence is the tool's self-assessed confidence in (0, 1].
	Confidence float64
}

// Class tags the technology family of a tool.
type Class int

// Tool classes.
const (
	ClassSAST Class = iota + 1
	ClassDAST
	ClassSimulated
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case ClassSAST:
		return "SAST"
	case ClassDAST:
		return "DAST"
	case ClassSimulated:
		return "simulated"
	default:
		return "unknown"
	}
}

// Tool is a vulnerability detection tool under benchmark.
type Tool interface {
	// Name returns the tool's display name, unique within a campaign.
	Name() string
	// Class returns the tool's technology family.
	Class() Class
	// Analyze inspects one workload case and returns its findings. The
	// RNG is used only by stochastic (simulated) tools; deterministic
	// tools ignore it. Implementations must not retain or mutate the case.
	Analyze(cs workload.Case, rng *stats.RNG) ([]Report, error)
}

// ContextAnalyzer is an optional extension of Tool for implementations
// that can observe cancellation mid-analysis. The harness's execution
// engine prefers AnalyzeContext when a tool provides it and passes the
// per-attempt context (carrying the per-tool deadline); tools that block
// on external work should select on ctx.Done() so a deadline or a
// cancelled campaign releases the worker instead of leaking a goroutine.
// Tools without this interface are invoked through Analyze on a watchdog
// goroutine that the engine abandons on timeout.
type ContextAnalyzer interface {
	Tool
	// AnalyzeContext is Analyze with cancellation. Implementations must
	// return promptly (with any error) once ctx is done.
	AnalyzeContext(ctx context.Context, cs workload.Case, rng *stats.RNG) ([]Report, error)
}

// ExecEngineBindable is implemented by tools that execute services (the
// dynamic family). The harness rebinds every such tool in a campaign to
// one shared execution engine — by default the bytecode VM of
// internal/svclang/compile, or the reference interpreter when
// Options.Interpreter asks for it — so compiled programs are shared
// across tools and workers exactly like the cfg compile cache.
type ExecEngineBindable interface {
	Tool
	// WithExecEngine returns a copy of the tool executing through eng.
	// The receiver is not mutated (campaign-scoped binding must not leak
	// into tools shared across campaigns).
	WithExecEngine(eng *compile.Engine) Tool
}

// retryableError marks an error as transient: the execution engine may
// re-run the attempt (with an identical RNG stream) up to its retry
// budget. The zero value of every real failure is permanent; only errors
// explicitly wrapped by MarkRetryable are retried.
type retryableError struct{ err error }

func (e *retryableError) Error() string { return e.err.Error() }
func (e *retryableError) Unwrap() error { return e.err }

// MarkRetryable wraps err so IsRetryable reports true for it. Tools wrap
// transient faults (flaky I/O, resource contention) whose repetition is
// expected to succeed; deterministic analysis failures must be returned
// unwrapped so the engine records them once and moves on. MarkRetryable
// of nil returns nil.
func MarkRetryable(err error) error {
	if err == nil {
		return nil
	}
	return &retryableError{err: err}
}

// IsRetryable reports whether err (or any error in its chain) was marked
// retryable via MarkRetryable.
func IsRetryable(err error) bool {
	var re *retryableError
	return errors.As(err, &re)
}
