package detectors

import (
	"reflect"
	"testing"

	"github.com/dsn2015/vdbench/internal/stats"
	"github.com/dsn2015/vdbench/internal/svclang"
	"github.com/dsn2015/vdbench/internal/svclang/cfg"
)

// TestCachedDataflowMatchesUncached pins the compile-cache invariant: a
// cache-bound dataflow tool produces byte-identical reports to its unbound
// original on every template case, and the original is not mutated.
func TestCachedDataflowMatchesUncached(t *testing.T) {
	cases := templateCases(t)
	for _, tool := range []Tool{dfPrecise(), dfStateless()} {
		cc := cfg.NewCache()
		cached := tool.(CompileCacheable).WithCompileCache(cc)
		if cached == tool {
			t.Fatalf("%s: WithCompileCache returned the receiver", tool.Name())
		}
		// Two passes: the first misses on every distinct service, the
		// second must serve each graph from memory with identical reports.
		for pass := 0; pass < 2; pass++ {
			for _, cs := range cases {
				want := analyze(t, tool, cs)
				got := analyze(t, cached, cs)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("%s on %s: cached reports differ", tool.Name(), cs.Service.Name)
				}
			}
		}
		hits, misses := cc.Stats()
		if misses != uint64(len(cases)) {
			t.Fatalf("%s: misses = %d, want one per case (%d)", tool.Name(), misses, len(cases))
		}
		if hits != uint64(len(cases)) {
			t.Fatalf("%s: hits = %d, want one per case (%d)", tool.Name(), hits, len(cases))
		}
	}
}

// TestCacheSharedAcrossToolsWithEqualOptions checks the cross-tool payoff:
// df-precise and df-stateless lower with the same cfg.Options, so after
// one tool has analysed a case the other's build is a hit.
func TestCacheSharedAcrossToolsWithEqualOptions(t *testing.T) {
	cs := buildCase(t, "direct-splice", svclang.SinkSQL, true)
	cc := cfg.NewCache()
	a := dfPrecise().(CompileCacheable).WithCompileCache(cc)
	b := dfStateless().(CompileCacheable).WithCompileCache(cc)
	if _, err := a.Analyze(cs, stats.NewRNG(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Analyze(cs, stats.NewRNG(1)); err != nil {
		t.Fatal(err)
	}
	hits, misses := cc.Stats()
	if misses != 1 {
		t.Fatalf("misses = %d, want 1 (both tools share one option set)", misses)
	}
	if hits == 0 {
		t.Fatal("second tool did not hit the shared cache")
	}
}

// TestCombinedAndRestrictedForwardCache checks that the wrappers rebind
// their members: analysing through the wrapped tool must populate the
// cache, and the reports must match the unbound wrapper's.
func TestCombinedAndRestrictedForwardCache(t *testing.T) {
	cs := buildCase(t, "direct-splice", svclang.SinkSQL, true)

	union, err := NewCombined("df-union", Union, []Tool{dfPrecise(), dfStateless()})
	if err != nil {
		t.Fatal(err)
	}
	sqlOnly, err := RestrictKinds(dfPrecise(), svclang.SinkSQL)
	if err != nil {
		t.Fatal(err)
	}
	for _, tool := range []Tool{union, sqlOnly} {
		cc := cfg.NewCache()
		cached := tool.(CompileCacheable).WithCompileCache(cc)
		want := analyze(t, tool, cs)
		got := analyze(t, cached, cs)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: cached reports differ", tool.Name())
		}
		if _, misses := cc.Stats(); misses == 0 {
			t.Fatalf("%s: wrapper did not forward the cache to its members", tool.Name())
		}
	}
}
