package detectors

import (
	"fmt"

	"github.com/dsn2015/vdbench/internal/workload"
)

// StandardSuite returns the benchmark campaign's tool set: six static
// tools (four AST-walker taint configurations plus two CFG dataflow
// engines), two penetration testers and one simulated heuristic tool. The
// mix reproduces the qualitative spread of the published campaigns —
// static analysis trades precision for recall, penetration testing the
// reverse — with each tool's wrong results caused by a documented
// mechanism rather than injected noise.
func StandardSuite() ([]Tool, error) {
	var tools []Tool

	// ts-precise: a modern taint analyser. Its only systematic blind spot
	// is the naive diagonal sanitizer model, which over-reports
	// accidentally-safe quoted splices.
	tools = append(tools, NewTaintSAST(TaintSASTConfig{
		Name:              "ts-precise",
		SinkAware:         true,
		DiagonalAdequacy:  true,
		ValidatorAware:    true,
		PruneDeadBranches: true,
		TrackLoops:        true,
		TrackStores:       true,
	}))

	// ts-aggressive: maximal recall configuration — no validator
	// recognition, no dead-code pruning. Reports everything that could
	// conceivably flow.
	tools = append(tools, NewTaintSAST(TaintSASTConfig{
		Name:             "ts-aggressive",
		SinkAware:        true,
		DiagonalAdequacy: true,
		TrackLoops:       true,
		TrackStores:      true,
	}))

	// ts-lite: a lightweight checker that trusts any sanitizer for any
	// sink and skips loop bodies.
	tools = append(tools, NewTaintSAST(TaintSASTConfig{
		Name:      "ts-lite",
		SinkAware: false,
	}))

	// grep-sast: signature matching without flow sensitivity.
	tools = append(tools, NewSignatureSAST("grep-sast"))

	// df-precise: the CFG/worklist engine at ts-precise's knob settings
	// plus path sensitivity. Branch-condition refinement clears validated
	// in-branch splices the walker family false-alarms on; the diagonal
	// sanitizer model remains its one blind spot.
	tools = append(tools, NewDataflowSAST(DataflowSASTConfig{
		TaintSASTConfig: TaintSASTConfig{
			Name:              "df-precise",
			SinkAware:         true,
			DiagonalAdequacy:  true,
			ValidatorAware:    true,
			PruneDeadBranches: true,
			TrackLoops:        true,
			TrackStores:       true,
		},
		PathSensitive: true,
	}))

	// df-stateless: the same engine without session-store modelling — the
	// common real-world configuration that misses second-order (stored)
	// flows.
	tools = append(tools, NewDataflowSAST(DataflowSASTConfig{
		TaintSASTConfig: TaintSASTConfig{
			Name:              "df-stateless",
			SinkAware:         true,
			DiagonalAdequacy:  true,
			ValidatorAware:    true,
			PruneDeadBranches: true,
			TrackLoops:        true,
		},
		PathSensitive: true,
	}))

	// pt-deep: thorough penetration tester with input exploration and the
	// full payload dictionary.
	tools = append(tools, NewPentester(PentesterConfig{
		Name:          "pt-deep",
		ExploreInputs: true,
	}))

	// pt-fast: time-boxed penetration tester — one payload per kind, no
	// input exploration.
	tools = append(tools, NewPentester(PentesterConfig{
		Name:          "pt-fast",
		PayloadBudget: 1,
	}))

	// heur-ml: a simulated anomaly-scoring tool whose quality degrades
	// with case difficulty, standing in for the ML-based detectors of the
	// original campaigns.
	sim, err := NewParametric(ParametricConfig{
		Name: "heur-ml",
		TPR: map[workload.Difficulty]float64{
			workload.Easy:   0.95,
			workload.Medium: 0.75,
			workload.Hard:   0.50,
		},
		DefaultTPR: 0.7,
		FPR:        0.08,
	})
	if err != nil {
		return nil, fmt.Errorf("build heur-ml: %w", err)
	}
	tools = append(tools, sim)

	return tools, nil
}
