package detectors

import (
	"errors"
	"fmt"
	"sort"

	"github.com/dsn2015/vdbench/internal/stats"
	"github.com/dsn2015/vdbench/internal/svclang"
	"github.com/dsn2015/vdbench/internal/svclang/cfg"
	"github.com/dsn2015/vdbench/internal/svclang/compile"
	"github.com/dsn2015/vdbench/internal/workload"
)

// CombineMode selects how a combined tool merges member findings.
type CombineMode int

// Combination modes. Union reports a sink if any member does (raises
// recall, inherits every member's false alarms); Intersection reports
// only sinks every member flags (raises precision, keeps only commonly
// found vulnerabilities); Majority reports sinks flagged by more than
// half of the members.
const (
	Union CombineMode = iota + 1
	Intersection
	Majority
)

// String implements fmt.Stringer.
func (m CombineMode) String() string {
	switch m {
	case Union:
		return "union"
	case Intersection:
		return "intersection"
	case Majority:
		return "majority"
	default:
		return fmt.Sprintf("CombineMode(%d)", int(m))
	}
}

// combined merges the findings of member tools. Combining static and
// dynamic tools is the standard industrial practice the original authors
// studied in their tool-combination work; the combined tool lets the
// benchmark quantify what each mode buys.
type combined struct {
	name    string
	mode    CombineMode
	members []Tool
}

var _ Tool = (*combined)(nil)
var _ CompileCacheable = (*combined)(nil)
var _ ExecEngineBindable = (*combined)(nil)

// WithCompileCache implements CompileCacheable by rebinding every member
// that supports a compile cache; other members are kept as-is.
func (c *combined) WithCompileCache(cc *cfg.Cache) Tool {
	clone := *c
	clone.members = make([]Tool, len(c.members))
	for i, m := range c.members {
		if ccm, ok := m.(CompileCacheable); ok {
			clone.members[i] = ccm.WithCompileCache(cc)
		} else {
			clone.members[i] = m
		}
	}
	return &clone
}

// WithExecEngine implements ExecEngineBindable by rebinding every member
// that executes services; other members are kept as-is.
func (c *combined) WithExecEngine(eng *compile.Engine) Tool {
	clone := *c
	clone.members = make([]Tool, len(c.members))
	for i, m := range c.members {
		if em, ok := m.(ExecEngineBindable); ok {
			clone.members[i] = em.WithExecEngine(eng)
		} else {
			clone.members[i] = m
		}
	}
	return &clone
}

// NewCombined builds a tool that merges the findings of members under the
// given mode.
func NewCombined(name string, mode CombineMode, members []Tool) (Tool, error) {
	if name == "" {
		return nil, errors.New("detectors: combined tool needs a name")
	}
	if mode != Union && mode != Intersection && mode != Majority {
		return nil, fmt.Errorf("detectors: unknown combine mode %d", int(mode))
	}
	if len(members) < 2 {
		return nil, fmt.Errorf("detectors: combined tool needs at least 2 members, got %d", len(members))
	}
	for i, m := range members {
		if m == nil {
			return nil, fmt.Errorf("detectors: member %d is nil", i)
		}
	}
	return &combined{name: name, mode: mode, members: append([]Tool(nil), members...)}, nil
}

func (c *combined) Name() string { return c.name }

// Class reports the class of the first member if all members agree, and
// ClassSimulated otherwise (a mixed-technology combination).
func (c *combined) Class() Class {
	first := c.members[0].Class()
	for _, m := range c.members[1:] {
		if m.Class() != first {
			return ClassSimulated
		}
	}
	return first
}

// Analyze implements Tool.
func (c *combined) Analyze(cs workload.Case, rng *stats.RNG) ([]Report, error) {
	votes := map[int]int{}
	conf := map[int]float64{}
	kinds := map[int]svclang.SinkKind{}
	for _, m := range c.members {
		var memberRNG *stats.RNG
		if rng != nil {
			memberRNG = rng.Split()
		}
		reports, err := m.Analyze(cs, memberRNG)
		if err != nil {
			return nil, fmt.Errorf("detectors: %s member %s: %w", c.name, m.Name(), err)
		}
		seen := map[int]bool{}
		for _, r := range reports {
			if seen[r.SinkID] {
				continue // one vote per member per sink
			}
			seen[r.SinkID] = true
			votes[r.SinkID]++
			kinds[r.SinkID] = r.Kind
			if r.Confidence > conf[r.SinkID] {
				conf[r.SinkID] = r.Confidence
			}
		}
	}
	threshold := 1
	switch c.mode {
	case Intersection:
		threshold = len(c.members)
	case Majority:
		threshold = len(c.members)/2 + 1
	}
	var out []Report
	for sinkID, n := range votes {
		if n < threshold {
			continue
		}
		out = append(out, Report{
			Service:    cs.Service.Name,
			SinkID:     sinkID,
			Kind:       kinds[sinkID],
			Confidence: conf[sinkID],
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].SinkID < out[j].SinkID })
	return out, nil
}

// restricted filters a tool's findings to a set of sink kinds, modelling
// single-purpose scanners (e.g. a SQL-injection-only tool).
type restricted struct {
	inner Tool
	kinds map[svclang.SinkKind]bool
	name  string
}

var _ Tool = (*restricted)(nil)
var _ CompileCacheable = (*restricted)(nil)
var _ ExecEngineBindable = (*restricted)(nil)

// WithCompileCache implements CompileCacheable by rebinding the inner tool
// when it supports a compile cache.
func (r *restricted) WithCompileCache(cc *cfg.Cache) Tool {
	clone := *r
	if cci, ok := r.inner.(CompileCacheable); ok {
		clone.inner = cci.WithCompileCache(cc)
	}
	return &clone
}

// WithExecEngine implements ExecEngineBindable by rebinding the inner
// tool when it executes services.
func (r *restricted) WithExecEngine(eng *compile.Engine) Tool {
	clone := *r
	if ei, ok := r.inner.(ExecEngineBindable); ok {
		clone.inner = ei.WithExecEngine(eng)
	}
	return &clone
}

// RestrictKinds wraps a tool so that it only reports the given sink
// kinds.
func RestrictKinds(inner Tool, kinds ...svclang.SinkKind) (Tool, error) {
	if inner == nil {
		return nil, errors.New("detectors: nil inner tool")
	}
	if len(kinds) == 0 {
		return nil, errors.New("detectors: RestrictKinds needs at least one kind")
	}
	set := make(map[svclang.SinkKind]bool, len(kinds))
	names := ""
	for _, k := range kinds {
		if _, ok := svclang.SinkKindFromString(k.String()); !ok {
			return nil, fmt.Errorf("detectors: unknown sink kind %d", int(k))
		}
		set[k] = true
		if names != "" {
			names += "+"
		}
		names += k.String()
	}
	return &restricted{
		inner: inner,
		kinds: set,
		name:  fmt.Sprintf("%s[%s]", inner.Name(), names),
	}, nil
}

func (r *restricted) Name() string { return r.name }

func (r *restricted) Class() Class { return r.inner.Class() }

// Analyze implements Tool.
func (r *restricted) Analyze(cs workload.Case, rng *stats.RNG) ([]Report, error) {
	reports, err := r.inner.Analyze(cs, rng)
	if err != nil {
		return nil, err
	}
	out := reports[:0:0]
	for _, rep := range reports {
		if r.kinds[rep.Kind] {
			out = append(out, rep)
		}
	}
	return out, nil
}
