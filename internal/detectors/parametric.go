package detectors

import (
	"errors"
	"fmt"

	"github.com/dsn2015/vdbench/internal/stats"
	"github.com/dsn2015/vdbench/internal/workload"
)

// ParametricConfig defines a simulated tool by its intrinsic detection
// probabilities. Unlike the real mini-tools, a parametric tool reads the
// case labels: it flags each truly vulnerable sink with the
// difficulty-dependent true-positive probability and each clean sink with
// the false-positive probability. Experiments that must control tool
// quality exactly (prevalence sweeps, stability studies) use these.
type ParametricConfig struct {
	// Name is the tool's display name.
	Name string
	// TPR maps workload difficulty to the probability of detecting a
	// vulnerable sink of that difficulty. Missing difficulties default to
	// DefaultTPR.
	TPR map[workload.Difficulty]float64
	// DefaultTPR is the detection probability when TPR has no entry.
	DefaultTPR float64
	// FPR is the probability of flagging a clean sink.
	FPR float64
}

// Validate reports whether every probability is in [0, 1].
func (c ParametricConfig) Validate() error {
	if c.Name == "" {
		return errors.New("detectors: parametric tool needs a name")
	}
	check := func(p float64) error {
		if p < 0 || p > 1 {
			return fmt.Errorf("detectors: probability %g out of [0,1]", p)
		}
		return nil
	}
	if err := check(c.DefaultTPR); err != nil {
		return err
	}
	if err := check(c.FPR); err != nil {
		return err
	}
	for d, p := range c.TPR {
		if err := check(p); err != nil {
			return fmt.Errorf("difficulty %s: %w", d, err)
		}
	}
	return nil
}

type parametric struct {
	cfg ParametricConfig
}

var _ Tool = (*parametric)(nil)

// NewParametric builds a simulated tool. It returns an error for invalid
// probabilities.
func NewParametric(cfg ParametricConfig) (Tool, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &parametric{cfg: cfg}, nil
}

func (p *parametric) Name() string { return p.cfg.Name }

func (p *parametric) Class() Class { return ClassSimulated }

// Analyze implements Tool. The RNG drives the per-sink Bernoulli draws;
// callers provide a deterministic stream, making campaigns reproducible.
func (p *parametric) Analyze(cs workload.Case, rng *stats.RNG) ([]Report, error) {
	if cs.Service == nil {
		return nil, fmt.Errorf("detectors: %s: nil service", p.cfg.Name)
	}
	if rng == nil {
		return nil, fmt.Errorf("detectors: %s: simulated tool needs an RNG", p.cfg.Name)
	}
	var reports []Report
	for _, tr := range cs.Truths {
		var flag bool
		var conf float64
		if tr.Vulnerable {
			tpr, ok := p.cfg.TPR[cs.Difficulty]
			if !ok {
				tpr = p.cfg.DefaultTPR
			}
			flag = rng.Bernoulli(tpr)
			conf = 0.55 + 0.4*rng.Float64() // true hits: mid-to-high confidence
		} else {
			flag = rng.Bernoulli(p.cfg.FPR)
			conf = 0.3 + 0.4*rng.Float64() // false alarms: lower confidence
		}
		if flag {
			reports = append(reports, Report{
				Service:    cs.Service.Name,
				SinkID:     tr.SinkID,
				Kind:       tr.Kind,
				Confidence: conf,
			})
		}
	}
	return reports, nil
}

// NewExactRateTool builds a parametric tool with one TPR for every
// difficulty. Experiments that sweep workload properties at fixed
// intrinsic tool quality use these.
func NewExactRateTool(name string, tpr, fpr float64) (Tool, error) {
	return NewParametric(ParametricConfig{
		Name:       name,
		DefaultTPR: tpr,
		FPR:        fpr,
	})
}
