package detectors

import (
	"testing"

	"github.com/dsn2015/vdbench/internal/dataflow"
	"github.com/dsn2015/vdbench/internal/stats"
	"github.com/dsn2015/vdbench/internal/svclang"
	"github.com/dsn2015/vdbench/internal/svclang/cfg"
	"github.com/dsn2015/vdbench/internal/workload"
)

// randFact draws a random taintFact over up to nvars slots. The vector
// length itself is drawn too: the lattice must treat a short vector and
// its zero-padded extension as the same environment.
func randFact(rng *stats.RNG, nvars int) taintFact {
	if rng.Bernoulli(0.15) {
		return taintFact{} // bottom
	}
	vars := make([]absVal, rng.Intn(nvars+1))
	for i := range vars {
		if rng.Bernoulli(0.5) {
			vars[i] = absVal{
				dangerous: kindMask(rng.Intn(int(allKindsMask()) + 1)),
				sanitized: rng.Bernoulli(0.3),
			}
		}
	}
	return taintFact{live: true, vars: vars}
}

// TestTaintLatticeLaws property-checks the join-semilattice axioms the
// solver's correctness rests on: commutativity, associativity,
// idempotence, and bottom as the identity — over randomly drawn facts,
// including facts that mention different variable sets.
func TestTaintLatticeLaws(t *testing.T) {
	lat := taintLattice{}
	const nvars = 4
	rng := stats.NewRNG(20150622)
	for i := 0; i < 5000; i++ {
		a, b, c := randFact(rng, nvars), randFact(rng, nvars), randFact(rng, nvars)
		if !lat.Equal(lat.Join(a, b), lat.Join(b, a)) {
			t.Fatalf("join not commutative: %+v vs %+v", a, b)
		}
		if !lat.Equal(lat.Join(lat.Join(a, b), c), lat.Join(a, lat.Join(b, c))) {
			t.Fatalf("join not associative: %+v %+v %+v", a, b, c)
		}
		if !lat.Equal(lat.Join(a, a), a) {
			t.Fatalf("join not idempotent: %+v", a)
		}
		if !lat.Equal(lat.Join(a, lat.Bottom()), a) || !lat.Equal(lat.Join(lat.Bottom(), a), a) {
			t.Fatalf("bottom not the join identity: %+v", a)
		}
	}
}

// latticeHeight bounds the longest strictly-ascending chain of taintFacts
// over nvars variables: one step to become live, and per variable five
// dangerous bits plus the sanitized flag.
func latticeHeight(nvars int) int {
	return 1 + nvars*6
}

// TestSolverFixpointOnGeneratedCFGs is the solver convergence property
// test of the ISSUE: on 1000 generated-service CFGs the worklist must
// reach a fixpoint within |blocks| × lattice-height transfer evaluations,
// and the solution must actually be a fixpoint of the transfer function.
func TestSolverFixpointOnGeneratedCFGs(t *testing.T) {
	cfgKnobs := TaintSASTConfig{
		Name:      "prop",
		SinkAware: true,
	}
	tool := &dataflowSAST{cfg: DataflowSASTConfig{TaintSASTConfig: cfgKnobs}}
	services := 0
	for _, seed := range []uint64{3, 11, 2015} {
		corpus, err := workload.Generate(workload.Config{
			Services:         334,
			TargetPrevalence: 0.4,
			Seed:             seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, cs := range corpus.Cases {
			services++
			checkFixpoint(t, tool, cs.Service)
		}
	}
	if services < 1000 {
		t.Fatalf("property corpus has %d services, want >= 1000", services)
	}
}

func checkFixpoint(t *testing.T, tool *dataflowSAST, svc *svclang.Service) {
	t.Helper()
	g := cfg.Build(svc, cfg.Options{}) // loops tracked: the hard case for convergence
	run := &dataflowRun{
		tool:       tool,
		svc:        svc,
		found:      map[int]Report{},
		slots:      slotTable(svc),
		storeSlots: storeSlotTable(svc),
	}
	run.store = make([]absVal, len(run.storeSlots))
	run.nextStore = make([]absVal, len(run.storeSlots))
	entry := make([]absVal, len(run.slots))
	for _, p := range svc.Params {
		entry[run.slots[p]] = absVal{dangerous: allKindsMask()}
	}
	transfer := func(n int, in taintFact) taintFact {
		return run.transfer(g.Blocks[n], in)
	}
	lat := taintLattice{}
	res := dataflow.Solve[taintFact](g, lat, taintFact{live: true, vars: entry}, transfer)

	if bound := g.NumNodes() * latticeHeight(len(run.slots)); res.Visits > bound {
		t.Fatalf("%s: %d visits exceeds |blocks|·height = %d·%d = %d",
			svc.Name, res.Visits, g.NumNodes(), latticeHeight(len(run.slots)), bound)
	}
	// The solution is a fixpoint: every out-fact is the transfer of its
	// in-fact, and every reachable edge's flow is absorbed by the
	// successor's in-fact.
	for n := 0; n < g.NumNodes(); n++ {
		if !lat.Equal(res.Out[n], transfer(n, res.In[n])) {
			t.Fatalf("%s block %d: out != transfer(in)", svc.Name, n)
		}
		for _, succ := range g.Succs(n) {
			if !lat.Equal(lat.Join(res.In[succ], res.Out[n]), res.In[succ]) {
				t.Fatalf("%s edge %d->%d: successor in-fact does not absorb the out-fact", svc.Name, n, succ)
			}
		}
	}
}
