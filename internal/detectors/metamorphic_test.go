package detectors

import (
	"fmt"
	"testing"

	"github.com/dsn2015/vdbench/internal/stats"
	"github.com/dsn2015/vdbench/internal/svclang"
	"github.com/dsn2015/vdbench/internal/workload"
)

// Metamorphic property: alpha-renaming every variable and parameter of a
// service must not change any tool's verdicts. Real tools violating this
// would be matching on identifier names — a classic benchmark-overfitting
// smell the harness must not reward.

// renameService produces a deep copy with params/vars renamed through the
// given mapping (identity for unmapped names).
func renameService(svc *svclang.Service, mapping map[string]string) *svclang.Service {
	ren := func(name string) string {
		if to, ok := mapping[name]; ok {
			return to
		}
		return name
	}
	var renameExpr func(e svclang.Expr) svclang.Expr
	renameExpr = func(e svclang.Expr) svclang.Expr {
		switch v := e.(type) {
		case svclang.Lit:
			return v
		case svclang.Ident:
			return svclang.Ident{Name: ren(v.Name)}
		case svclang.Call:
			args := make([]svclang.Expr, len(v.Args))
			for i, a := range v.Args {
				args[i] = renameExpr(a)
			}
			return svclang.Call{Fn: v.Fn, Args: args}
		default:
			return e
		}
	}
	var renameCond func(c svclang.Cond) svclang.Cond
	renameCond = func(c svclang.Cond) svclang.Cond {
		switch v := c.(type) {
		case svclang.Match:
			return svclang.Match{Expr: renameExpr(v.Expr), Class: v.Class}
		case svclang.Contains:
			return svclang.Contains{Expr: renameExpr(v.Expr), Needle: v.Needle}
		case svclang.Eq:
			return svclang.Eq{Expr: renameExpr(v.Expr), Value: v.Value}
		case svclang.Not:
			return svclang.Not{Inner: renameCond(v.Inner)}
		default:
			return c
		}
	}
	var renameStmts func(list []svclang.Stmt) []svclang.Stmt
	renameStmts = func(list []svclang.Stmt) []svclang.Stmt {
		out := make([]svclang.Stmt, len(list))
		for i, st := range list {
			switch v := st.(type) {
			case svclang.VarDecl:
				out[i] = svclang.VarDecl{Name: ren(v.Name)}
			case svclang.Assign:
				out[i] = svclang.Assign{Name: ren(v.Name), Expr: renameExpr(v.Expr)}
			case svclang.If:
				out[i] = svclang.If{
					Cond: renameCond(v.Cond),
					Then: renameStmts(v.Then),
					Else: renameStmts(v.Else),
				}
			case svclang.Repeat:
				out[i] = svclang.Repeat{Count: v.Count, Body: renameStmts(v.Body)}
			case svclang.Sink:
				out[i] = svclang.Sink{ID: v.ID, Kind: v.Kind, Expr: renameExpr(v.Expr), Silent: v.Silent}
			case svclang.Store:
				out[i] = svclang.Store{Key: v.Key, Expr: renameExpr(v.Expr)}
			default:
				out[i] = st
			}
		}
		return out
	}
	params := make([]string, len(svc.Params))
	for i, p := range svc.Params {
		params[i] = ren(p)
	}
	return &svclang.Service{
		Name:   svc.Name,
		Params: params,
		Body:   renameStmts(svc.Body),
	}
}

// collectNames gathers every declared name of a service.
func collectNames(svc *svclang.Service) []string {
	names := append([]string(nil), svc.Params...)
	var walk func(list []svclang.Stmt)
	walk = func(list []svclang.Stmt) {
		for _, st := range list {
			switch v := st.(type) {
			case svclang.VarDecl:
				names = append(names, v.Name)
			case svclang.If:
				walk(v.Then)
				walk(v.Else)
			case svclang.Repeat:
				walk(v.Body)
			}
		}
	}
	walk(svc.Body)
	return names
}

func TestToolsInvariantUnderAlphaRenaming(t *testing.T) {
	tools := []Tool{precise(), aggressive(), lite(), trueMatrix(), NewSignatureSAST("sig"), deepPT(), fastPT()}
	for _, tpl := range workload.Templates() {
		for _, vulnerable := range []bool{false, true} {
			kind := tpl.Kinds[0]
			svc, _ := tpl.Build("orig", kind, vulnerable)
			truths, err := svclang.Analyze(svc)
			if err != nil {
				t.Fatal(err)
			}
			mapping := map[string]string{}
			for i, name := range collectNames(svc) {
				mapping[name] = fmt.Sprintf("zz_%d_%s", i, name)
			}
			renamed := renameService(svc, mapping)
			if err := renamed.Validate(); err != nil {
				t.Fatalf("%s: renamed service invalid: %v", tpl.Name, err)
			}
			renamedTruths, err := svclang.Analyze(renamed)
			if err != nil {
				t.Fatal(err)
			}
			// Oracle itself must be renaming-invariant.
			for i := range truths {
				if truths[i].Vulnerable != renamedTruths[i].Vulnerable {
					t.Fatalf("%s: oracle changed verdict under renaming", tpl.Name)
				}
			}
			origCase := workload.Case{Service: svc, Template: tpl.Name, Difficulty: tpl.Difficulty, Truths: truths}
			renCase := workload.Case{Service: renamed, Template: tpl.Name, Difficulty: tpl.Difficulty, Truths: renamedTruths}
			for _, tool := range tools {
				r1, err := tool.Analyze(origCase, stats.NewRNG(1))
				if err != nil {
					t.Fatal(err)
				}
				r2, err := tool.Analyze(renCase, stats.NewRNG(1))
				if err != nil {
					t.Fatal(err)
				}
				if len(r1) != len(r2) {
					t.Fatalf("%s on %s (vulnerable=%v): verdict count changed under renaming (%d vs %d)",
						tool.Name(), tpl.Name, vulnerable, len(r1), len(r2))
				}
				for i := range r1 {
					if r1[i].SinkID != r2[i].SinkID || r1[i].Kind != r2[i].Kind {
						t.Fatalf("%s on %s: report %d changed under renaming", tool.Name(), tpl.Name, i)
					}
				}
			}
		}
	}
}
