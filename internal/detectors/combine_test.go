package detectors

import (
	"testing"

	"github.com/dsn2015/vdbench/internal/stats"
	"github.com/dsn2015/vdbench/internal/svclang"
	"github.com/dsn2015/vdbench/internal/workload"
)

func TestNewCombinedValidation(t *testing.T) {
	a := NewSignatureSAST("a")
	b := NewSignatureSAST("b")
	if _, err := NewCombined("", Union, []Tool{a, b}); err == nil {
		t.Error("nameless combined accepted")
	}
	if _, err := NewCombined("c", CombineMode(9), []Tool{a, b}); err == nil {
		t.Error("bad mode accepted")
	}
	if _, err := NewCombined("c", Union, []Tool{a}); err == nil {
		t.Error("single member accepted")
	}
	if _, err := NewCombined("c", Union, []Tool{a, nil}); err == nil {
		t.Error("nil member accepted")
	}
}

func TestCombineModeString(t *testing.T) {
	if Union.String() != "union" || Intersection.String() != "intersection" || Majority.String() != "majority" {
		t.Fatal("mode names wrong")
	}
	if CombineMode(9).String() == "" {
		t.Fatal("unknown mode should render")
	}
}

// combineFixture builds cases where the SAST and DAST members disagree:
// the silent-sink case is found only by SAST; the validated-splice safe
// case is flagged only by the non-validator-aware SAST.
func combineFixture(t *testing.T) (sast, dast, uni, inter Tool, silentVuln, validatedSafe workload.Case) {
	t.Helper()
	sast = aggressive() // flags validated-safe (FP), finds silent sinks
	dast = deepPT()     // misses silent sinks, never false-alarms
	var err error
	uni, err = NewCombined("uni", Union, []Tool{sast, dast})
	if err != nil {
		t.Fatal(err)
	}
	inter, err = NewCombined("inter", Intersection, []Tool{sast, dast})
	if err != nil {
		t.Fatal(err)
	}
	silentVuln = buildCase(t, "silent-sink", svclang.SinkSQL, true)
	validatedSafe = buildCase(t, "validated-splice", svclang.SinkSQL, false)
	return sast, dast, uni, inter, silentVuln, validatedSafe
}

func TestCombinedUnionRaisesRecall(t *testing.T) {
	_, dast, uni, _, silentVuln, _ := combineFixture(t)
	if reportsSink(t, dast, silentVuln, 0) {
		t.Fatal("precondition: DAST should miss the silent sink")
	}
	if !reportsSink(t, uni, silentVuln, 0) {
		t.Fatal("union should inherit the SAST detection")
	}
}

func TestCombinedUnionInheritsFalseAlarms(t *testing.T) {
	sast, _, uni, _, _, validatedSafe := combineFixture(t)
	if !reportsSink(t, sast, validatedSafe, 0) {
		t.Fatal("precondition: aggressive SAST should flag validated code")
	}
	if !reportsSink(t, uni, validatedSafe, 0) {
		t.Fatal("union should inherit the SAST false alarm")
	}
}

func TestCombinedIntersectionRaisesPrecision(t *testing.T) {
	_, _, _, inter, silentVuln, validatedSafe := combineFixture(t)
	if reportsSink(t, inter, validatedSafe, 0) {
		t.Fatal("intersection should drop the single-tool false alarm")
	}
	// The price: single-tool detections are dropped too.
	if reportsSink(t, inter, silentVuln, 0) {
		t.Fatal("intersection should drop the SAST-only detection")
	}
	// Both members find the plain direct splice: intersection keeps it.
	direct := buildCase(t, "direct-splice", svclang.SinkSQL, true)
	if !reportsSink(t, inter, direct, 0) {
		t.Fatal("intersection should keep commonly found vulnerabilities")
	}
}

func TestCombinedMajority(t *testing.T) {
	// Three members: two flag validated-safe (aggressive + signature), one
	// does not (DAST). Majority (2 of 3) keeps it; with two DAST members
	// it would not.
	maj, err := NewCombined("maj", Majority, []Tool{aggressive(), NewSignatureSAST("sig"), deepPT()})
	if err != nil {
		t.Fatal(err)
	}
	validatedSafe := buildCase(t, "validated-splice", svclang.SinkSQL, false)
	if !reportsSink(t, maj, validatedSafe, 0) {
		t.Fatal("2-of-3 vote should flag")
	}
	maj2, err := NewCombined("maj2", Majority, []Tool{aggressive(), deepPT(), fastPT()})
	if err != nil {
		t.Fatal(err)
	}
	if reportsSink(t, maj2, validatedSafe, 0) {
		t.Fatal("1-of-3 vote should not flag")
	}
}

func TestCombinedClass(t *testing.T) {
	sastOnly, err := NewCombined("s", Union, []Tool{aggressive(), lite()})
	if err != nil {
		t.Fatal(err)
	}
	if sastOnly.Class() != ClassSAST {
		t.Fatalf("homogeneous combination class = %v", sastOnly.Class())
	}
	mixed, err := NewCombined("m", Union, []Tool{aggressive(), deepPT()})
	if err != nil {
		t.Fatal(err)
	}
	if mixed.Class() != ClassSimulated {
		t.Fatalf("mixed combination class = %v", mixed.Class())
	}
}

func TestCombinedPropagatesMemberErrors(t *testing.T) {
	uni, err := NewCombined("u", Union, []Tool{aggressive(), deepPT()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := uni.Analyze(workload.Case{}, stats.NewRNG(1)); err == nil {
		t.Fatal("nil service should propagate member error")
	}
}

func TestRestrictKinds(t *testing.T) {
	base := aggressive()
	sqlOnly, err := RestrictKinds(base, svclang.SinkSQL)
	if err != nil {
		t.Fatal(err)
	}
	if sqlOnly.Name() != "aggressive[sql]" {
		t.Fatalf("name = %q", sqlOnly.Name())
	}
	if sqlOnly.Class() != ClassSAST {
		t.Fatal("class should pass through")
	}
	sqlVuln := buildCase(t, "direct-splice", svclang.SinkSQL, true)
	htmlVuln := buildCase(t, "direct-splice", svclang.SinkHTML, true)
	if !reportsSink(t, sqlOnly, sqlVuln, 0) {
		t.Fatal("restricted tool should keep in-scope findings")
	}
	if reportsSink(t, sqlOnly, htmlVuln, 0) {
		t.Fatal("restricted tool should drop out-of-scope findings")
	}
}

func TestRestrictKindsValidation(t *testing.T) {
	if _, err := RestrictKinds(nil, svclang.SinkSQL); err == nil {
		t.Error("nil inner accepted")
	}
	if _, err := RestrictKinds(aggressive()); err == nil {
		t.Error("empty kind list accepted")
	}
	if _, err := RestrictKinds(aggressive(), svclang.SinkKind(42)); err == nil {
		t.Error("bogus kind accepted")
	}
}

func TestRestrictKindsMultiple(t *testing.T) {
	multi, err := RestrictKinds(aggressive(), svclang.SinkSQL, svclang.SinkXPath)
	if err != nil {
		t.Fatal(err)
	}
	if multi.Name() != "aggressive[sql+xpath]" {
		t.Fatalf("name = %q", multi.Name())
	}
	xpathVuln := buildCase(t, "direct-splice", svclang.SinkXPath, true)
	if !reportsSink(t, multi, xpathVuln, 0) {
		t.Fatal("xpath should be in scope")
	}
}
