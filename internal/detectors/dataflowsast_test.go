package detectors

import (
	"fmt"
	"testing"

	"github.com/dsn2015/vdbench/internal/stats"
	"github.com/dsn2015/vdbench/internal/svclang"
	"github.com/dsn2015/vdbench/internal/workload"
)

// knobConfig expands a 6-bit mask into one of the 64 TaintSASTConfig knob
// combinations shared by the walker and the CFG engine.
func knobConfig(mask int) TaintSASTConfig {
	return TaintSASTConfig{
		Name:              fmt.Sprintf("knobs-%02d", mask),
		SinkAware:         mask&1 != 0,
		DiagonalAdequacy:  mask&2 != 0,
		ValidatorAware:    mask&4 != 0,
		PruneDeadBranches: mask&8 != 0,
		TrackLoops:        mask&16 != 0,
		TrackStores:       mask&32 != 0,
	}
}

// templateCases instantiates every template × supported kind × variant.
func templateCases(t *testing.T) []workload.Case {
	t.Helper()
	var out []workload.Case
	for _, tpl := range workload.Templates() {
		for _, kind := range tpl.Kinds {
			for _, vulnerable := range []bool{false, true} {
				out = append(out, buildCase(t, tpl.Name, kind, vulnerable))
			}
		}
	}
	return out
}

// generatedCases draws corpora with the differential-test seeds.
func generatedCases(t *testing.T) []workload.Case {
	t.Helper()
	var out []workload.Case
	for _, seed := range []uint64{1, 7, 42} {
		corpus, err := workload.Generate(workload.Config{
			Services:         60,
			TargetPrevalence: 0.4,
			Seed:             seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, corpus.Cases...)
	}
	return out
}

func analyze(t *testing.T, tool Tool, cs workload.Case) []Report {
	t.Helper()
	reports, err := tool.Analyze(cs, stats.NewRNG(1))
	if err != nil {
		t.Fatalf("%s on %s: %v", tool.Name(), cs.Service.Name, err)
	}
	return reports
}

// TestDataflowMatchesWalker is the differential test of the ISSUE: at
// every one of the 64 shared knob combinations, the CFG engine and the
// AST walker must produce identical report sets — same sinks, same kinds,
// same confidences — on every template instantiation and on generated
// corpora at seeds 1, 7 and 42. Divergence is only permitted under the
// PathSensitive knob, covered by the next test.
func TestDataflowMatchesWalker(t *testing.T) {
	cases := append(templateCases(t), generatedCases(t)...)
	for mask := 0; mask < 64; mask++ {
		cfg := knobConfig(mask)
		walker := NewTaintSAST(cfg)
		engine := NewDataflowSAST(DataflowSASTConfig{TaintSASTConfig: cfg})
		for _, cs := range cases {
			w := analyze(t, walker, cs)
			e := analyze(t, engine, cs)
			if len(w) != len(e) {
				t.Fatalf("mask %06b %s/%s: walker %d reports, engine %d\nwalker: %v\nengine: %v",
					mask, cs.Template, cs.Service.Name, len(w), len(e), w, e)
			}
			for i := range w {
				if w[i] != e[i] {
					t.Fatalf("mask %06b %s/%s report %d: walker %+v, engine %+v",
						mask, cs.Template, cs.Service.Name, i, w[i], e[i])
				}
			}
		}
	}
}

// TestPathSensitiveDivergences checks the PathSensitive contract: turning
// the knob on may only remove reports relative to the walker (refinement
// never invents taint), every removed report must be a sink the oracle
// calls safe (the engine is right, the walker wrong), and across the
// corpus such divergences actually occur.
func TestPathSensitiveDivergences(t *testing.T) {
	cases := append(templateCases(t), generatedCases(t)...)
	divergences := 0
	for mask := 0; mask < 64; mask++ {
		cfg := knobConfig(mask)
		walker := NewTaintSAST(cfg)
		engine := NewDataflowSAST(DataflowSASTConfig{TaintSASTConfig: cfg, PathSensitive: true})
		for _, cs := range cases {
			w := analyze(t, walker, cs)
			e := analyze(t, engine, cs)
			walkerBy := map[int]Report{}
			for _, r := range w {
				walkerBy[r.SinkID] = r
			}
			truthBy := map[int]bool{}
			for _, tr := range cs.Truths {
				truthBy[tr.SinkID] = tr.Vulnerable
			}
			for _, r := range e {
				wr, ok := walkerBy[r.SinkID]
				if !ok {
					t.Fatalf("mask %06b %s/%s: engine invented report for sink %d",
						mask, cs.Template, cs.Service.Name, r.SinkID)
				}
				if wr != r {
					t.Fatalf("mask %06b %s/%s sink %d: walker %+v, engine %+v",
						mask, cs.Template, cs.Service.Name, r.SinkID, wr, r)
				}
				delete(walkerBy, r.SinkID)
			}
			// Whatever remains was reported by the walker only: the
			// refinement suppressed it, and the oracle must agree it is
			// not vulnerable.
			for id := range walkerBy {
				divergences++
				if truthBy[id] {
					t.Fatalf("mask %06b %s/%s: PathSensitive suppressed a genuinely vulnerable sink %d",
						mask, cs.Template, cs.Service.Name, id)
				}
			}
		}
	}
	if divergences == 0 {
		t.Fatal("PathSensitive never diverged from the walker; the knob is inert")
	}
}

func dfPrecise() Tool {
	return NewDataflowSAST(DataflowSASTConfig{
		TaintSASTConfig: TaintSASTConfig{
			Name: "df-precise", SinkAware: true, DiagonalAdequacy: true,
			ValidatorAware: true, PruneDeadBranches: true, TrackLoops: true, TrackStores: true,
		},
		PathSensitive: true,
	})
}

func dfStateless() Tool {
	return NewDataflowSAST(DataflowSASTConfig{
		TaintSASTConfig: TaintSASTConfig{
			Name: "df-stateless", SinkAware: true, DiagonalAdequacy: true,
			ValidatorAware: true, PruneDeadBranches: true, TrackLoops: true,
		},
		PathSensitive: true,
	})
}

// TestDataflowValidatedBranch pins the mechanism that separates the CFG
// engine from the walker family in the standard suite: a sink inside the
// validated arm of a branch. The walker joins both arms and false-alarms
// on the safe variant; path-sensitive edge refinement clears it, while
// the wrong-parameter bug is still caught.
func TestDataflowValidatedBranch(t *testing.T) {
	for _, kind := range svclang.AllSinkKinds() {
		safe := buildCase(t, "validated-branch", kind, false)
		vuln := buildCase(t, "validated-branch", kind, true)
		if safe.Truths[0].Vulnerable || !vuln.Truths[0].Vulnerable {
			t.Fatal("precondition: validated-branch labels wrong")
		}
		if reportsSink(t, dfPrecise(), safe, 0) {
			t.Errorf("%s: path-sensitive engine flagged the validated branch", kind)
		}
		if !reportsSink(t, dfPrecise(), vuln, 0) {
			t.Errorf("%s: path-sensitive engine missed the wrong-parameter bug", kind)
		}
		// The walker at the same knob settings cannot express the
		// refinement: the safe variant is its false positive.
		if !reportsSink(t, precise(), safe, 0) {
			t.Errorf("%s: walker unexpectedly cleared the validated branch", kind)
		}
		// Neither tool touches the constant fallback sink.
		if reportsSink(t, dfPrecise(), safe, 1) || reportsSink(t, dfPrecise(), vuln, 1) {
			t.Errorf("%s: engine flagged the constant fallback sink", kind)
		}
	}
}

// TestDataflowStorePasses mirrors TestStoredFlowToolBehaviour for the CFG
// engine: the store-tracking configuration finds second-order flows via
// the two-pass store image, the stateless one is blind to them.
func TestDataflowStorePasses(t *testing.T) {
	vuln := buildCase(t, "stored-splice", svclang.SinkHTML, true)
	safe := buildCase(t, "stored-splice", svclang.SinkHTML, false)
	if !reportsSink(t, dfPrecise(), vuln, 0) {
		t.Error("store-tracking engine missed the stored flow")
	}
	if reportsSink(t, dfPrecise(), safe, 0) {
		t.Error("store-tracking engine flagged the sanitized stored flow")
	}
	if reportsSink(t, dfStateless(), vuln, 0) {
		t.Error("stateless engine should miss the stored flow")
	}
}

func TestDataflowDeterministicAndNilSafe(t *testing.T) {
	cs := buildCase(t, "double-param", svclang.SinkCmd, true)
	for _, tool := range []Tool{dfPrecise(), dfStateless()} {
		r1, err1 := tool.Analyze(cs, stats.NewRNG(1))
		r2, err2 := tool.Analyze(cs, stats.NewRNG(999))
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if len(r1) != len(r2) {
			t.Fatalf("%s nondeterministic", tool.Name())
		}
		for i := range r1 {
			if r1[i] != r2[i] {
				t.Fatalf("%s nondeterministic at %d", tool.Name(), i)
			}
		}
		if _, err := tool.Analyze(workload.Case{}, stats.NewRNG(1)); err == nil {
			t.Errorf("%s accepted a nil service", tool.Name())
		}
	}
}
