package detectors

import (
	"fmt"
	"sort"

	"github.com/dsn2015/vdbench/internal/stats"
	"github.com/dsn2015/vdbench/internal/svclang"
	"github.com/dsn2015/vdbench/internal/workload"
)

// signatureSAST models grep-style scanners: flow-insensitive,
// order-insensitive pattern matching. A variable is "dirty" if any
// assignment anywhere in the service stores parameter-derived data into it
// without passing it through some sanitizer (any sanitizer counts — the
// tool has no adequacy model). A sink is reported when its expression
// mentions a dirty name.
//
// The resulting error profile is characteristic of the family: it ignores
// validators and statement order (false positives on validated, dead and
// late-validated code is avoided or incurred purely by accident of
// syntax), and it trusts every sanitizer (false negatives on
// wrong-sanitizer flows).
type signatureSAST struct {
	name string
}

var _ Tool = (*signatureSAST)(nil)

// NewSignatureSAST builds a signature-matching static tool.
func NewSignatureSAST(name string) Tool {
	return &signatureSAST{name: name}
}

func (t *signatureSAST) Name() string { return t.name }

func (t *signatureSAST) Class() Class { return ClassSAST }

// Analyze implements Tool.
func (t *signatureSAST) Analyze(cs workload.Case, _ *stats.RNG) ([]Report, error) {
	svc := cs.Service
	if svc == nil {
		return nil, fmt.Errorf("detectors: %s: nil service", t.name)
	}
	dirty := make(map[string]bool, len(svc.Params))
	for _, p := range svc.Params {
		dirty[p] = true
	}
	// Flow-insensitive fixpoint: iterate assignments until no new variable
	// becomes dirty. Statement order and branching are ignored entirely.
	assigns, sinks := collectFlat(svc.Body)
	for changed := true; changed; {
		changed = false
		for _, a := range assigns {
			if !dirty[a.Name] && exprLooksDirty(a.Expr, dirty) {
				dirty[a.Name] = true
				changed = true
			}
		}
	}
	var reports []Report
	for _, sk := range sinks {
		if exprLooksDirty(sk.Expr, dirty) {
			reports = append(reports, Report{
				Service:    svc.Name,
				SinkID:     sk.ID,
				Kind:       sk.Kind,
				Confidence: 0.5, // pattern match only, no flow evidence
			})
		}
	}
	sort.Slice(reports, func(i, j int) bool { return reports[i].SinkID < reports[j].SinkID })
	return reports, nil
}

// storePseudoVar names the dirty-set entry for a session-store key. The
// NUL prefix keeps it disjoint from any declarable identifier.
func storePseudoVar(key string) string { return "\x00store:" + key }

// collectFlat gathers every assignment and sink in the service,
// flattening all control structure. Session-store writes become
// assignments to a pseudo-variable per key, which makes the
// flow-insensitive closure cover second-order flows for free.
func collectFlat(body []svclang.Stmt) (assigns []svclang.Assign, sinks []svclang.Sink) {
	var walk func(list []svclang.Stmt)
	walk = func(list []svclang.Stmt) {
		for _, st := range list {
			switch v := st.(type) {
			case svclang.Assign:
				assigns = append(assigns, v)
			case svclang.Store:
				assigns = append(assigns, svclang.Assign{Name: storePseudoVar(v.Key), Expr: v.Expr})
			case svclang.Sink:
				sinks = append(sinks, v)
			case svclang.If:
				walk(v.Then)
				walk(v.Else)
			case svclang.Repeat:
				walk(v.Body)
			}
		}
	}
	walk(body)
	return assigns, sinks
}

// exprLooksDirty reports whether the expression references a dirty name
// outside of any sanitizer call. Any sanitizer neutralises its whole
// subtree in this tool's model.
func exprLooksDirty(e svclang.Expr, dirty map[string]bool) bool {
	switch v := e.(type) {
	case svclang.Lit:
		return false
	case svclang.Ident:
		return dirty[v.Name]
	case svclang.LoadExpr:
		return dirty[storePseudoVar(v.Key)]
	case svclang.Call:
		if v.Fn.IsSanitizer() {
			return false // trusted blindly
		}
		for _, a := range v.Args {
			if exprLooksDirty(a, dirty) {
				return true
			}
		}
		return false
	default:
		return false
	}
}
