package detectors

import (
	"fmt"
	"sort"

	"github.com/dsn2015/vdbench/internal/stats"
	"github.com/dsn2015/vdbench/internal/svclang"
	"github.com/dsn2015/vdbench/internal/workload"
)

// TaintSASTConfig sets the precision knobs of the static taint analyser.
// Each knob corresponds to a capability real static analysis tools differ
// on; disabling it reproduces the matching class of wrong results.
type TaintSASTConfig struct {
	// Name is the tool's display name.
	Name string
	// SinkAware: the analyser models sanitizer adequacy per sink kind.
	// When false, any sanitizer clears taint for every kind — producing
	// false negatives on wrong-sanitizer flows.
	SinkAware bool
	// DiagonalAdequacy: the analyser uses the naive one-sanitizer-per-kind
	// matrix instead of the true adequacy relation. It then reports quoted
	// SQL/XPath behind quote-encoding sanitizers — false positives on
	// accidentally-safe code. Only meaningful when SinkAware is true.
	DiagonalAdequacy bool
	// ValidatorAware: the analyser recognises the validate-and-reject
	// idiom and clears taint on the validated variable. When false it
	// reports validated flows — false positives.
	ValidatorAware bool
	// PruneDeadBranches: the analyser evaluates constant conditions and
	// skips unreachable code. When false it reports sinks in dead branches
	// — false positives.
	PruneDeadBranches bool
	// TrackLoops: the analyser propagates taint through repeat bodies.
	// When false it skips loop bodies entirely — false negatives on
	// loop-carried flows.
	TrackLoops bool
	// TrackStores: the analyser models the session store, propagating
	// taint from store statements to load expressions across requests.
	// When false every load reads as clean — false negatives on
	// second-order (stored) flows.
	TrackStores bool
}

// taintSAST is a flow-sensitive, path-insensitive abstract interpreter
// over the mini-language: the same architecture as industrial taint
// analysers, at mini scale.
type taintSAST struct {
	cfg TaintSASTConfig
}

var _ Tool = (*taintSAST)(nil)

// NewTaintSAST builds a static taint analyser with the given
// configuration.
func NewTaintSAST(cfg TaintSASTConfig) Tool {
	return &taintSAST{cfg: cfg}
}

func (t *taintSAST) Name() string { return t.cfg.Name }

func (t *taintSAST) Class() Class { return ClassSAST }

// kindMask is a bitset over sink kinds.
type kindMask uint8

func maskOf(k svclang.SinkKind) kindMask { return 1 << uint(k) }

func allKindsMask() kindMask {
	var m kindMask
	for _, k := range svclang.AllSinkKinds() {
		m |= maskOf(k)
	}
	return m
}

// absVal is the abstract value of an expression: the set of sink kinds it
// is dangerous for, plus whether any sanitizer touched it (used for
// confidence scoring).
type absVal struct {
	dangerous kindMask
	sanitized bool
}

func (a absVal) join(b absVal) absVal {
	return absVal{dangerous: a.dangerous | b.dangerous, sanitized: a.sanitized || b.sanitized}
}

// absEnv maps variable names to abstract values.
type absEnv map[string]absVal

func (e absEnv) clone() absEnv {
	out := make(absEnv, len(e))
	for k, v := range e {
		out[k] = v
	}
	return out
}

func (e absEnv) joinWith(other absEnv) {
	for k, v := range other {
		e[k] = e[k].join(v)
	}
}

// absSource abstracts where evalExpr reads variable and session-store
// state from: the AST walker keeps map environments, the CFG engine keeps
// slot vectors. Implementations are pointer receivers carrying a
// "current environment" field, so sharing the evaluator costs no
// allocation per expression.
type absSource interface {
	varAbs(name string) absVal
	storeAbs(key string) absVal
}

// sanitizesUnder applies the configured adequacy model. It is shared by
// the AST walker and the CFG dataflow engine, which must agree on
// expression semantics exactly (the differential tests pin this).
func (cfg TaintSASTConfig) sanitizesUnder(b svclang.Builtin, k svclang.SinkKind) bool {
	if !cfg.SinkAware {
		// Any sanitizer is believed to clear everything.
		return b.IsSanitizer()
	}
	if cfg.DiagonalAdequacy {
		switch b {
		case svclang.BuiltinNumeric:
			return true
		case svclang.BuiltinEscapeSQL:
			return k == svclang.SinkSQL
		case svclang.BuiltinEscapeXPath:
			return k == svclang.SinkXPath
		case svclang.BuiltinEscapeHTML:
			return k == svclang.SinkHTML
		case svclang.BuiltinEscapeShell:
			return k == svclang.SinkCmd
		case svclang.BuiltinSanitizePath:
			return k == svclang.SinkPath
		default:
			return false
		}
	}
	return b.Sanitizes(k)
}

// Analyze implements Tool.
func (t *taintSAST) Analyze(cs workload.Case, _ *stats.RNG) ([]Report, error) {
	svc := cs.Service
	if svc == nil {
		return nil, fmt.Errorf("detectors: %s: nil service", t.cfg.Name)
	}
	env := make(absEnv, len(svc.Params)+4)
	for _, p := range svc.Params {
		env[p] = absVal{dangerous: allKindsMask()}
	}
	st := &taintState{tool: t, svc: svc, found: map[int]Report{}, store: absEnv{}}
	// Stateful services need a second pass so that taint stored by "late"
	// statements reaches loads that appear earlier in the body (a load in
	// request N observes what request N-1 stored). The store state is the
	// only thing carried between passes; the variable environment restarts,
	// exactly as it does per request at runtime.
	passes := 1
	if t.cfg.TrackStores && svc.UsesStore() {
		passes = 2
	}
	for i := 0; i < passes; i++ {
		passEnv := env.clone()
		st.stmts(svc.Body, passEnv)
	}
	reports := make([]Report, 0, len(st.found))
	for _, r := range st.found {
		reports = append(reports, r)
	}
	sort.Slice(reports, func(i, j int) bool { return reports[i].SinkID < reports[j].SinkID })
	return reports, nil
}

type taintState struct {
	tool  *taintSAST
	svc   *svclang.Service
	found map[int]Report
	// store is the abstract session store, keyed by store key; it persists
	// across analysis passes (weak updates only).
	store absEnv
	// curEnv is the environment the expression under evaluation reads
	// from; expr sets it before handing the state to evalExpr (the
	// absSource seam).
	curEnv absEnv
}

var _ absSource = (*taintState)(nil)

func (s *taintState) varAbs(name string) absVal  { return s.curEnv[name] }
func (s *taintState) storeAbs(key string) absVal { return s.store[key] }

// stmts analyses a statement list under env, mutating env in place. It
// returns true when the list always rejects (every path ends in Reject).
func (s *taintState) stmts(list []svclang.Stmt, env absEnv) bool {
	for _, st := range list {
		if s.stmt(st, env) {
			return true
		}
	}
	return false
}

func (s *taintState) stmt(st svclang.Stmt, env absEnv) bool {
	switch v := st.(type) {
	case svclang.VarDecl:
		env[v.Name] = absVal{}
	case svclang.Assign:
		env[v.Name] = s.expr(v.Expr, env)
	case svclang.Reject:
		return true
	case svclang.Store:
		if s.tool.cfg.TrackStores {
			val := s.expr(v.Expr, env)
			s.store[v.Key] = s.store[v.Key].join(val)
		}
	case svclang.Sink:
		val := s.expr(v.Expr, env)
		if val.dangerous&maskOf(v.Kind) != 0 {
			conf := 0.9
			if val.sanitized {
				// The value passed a sanitizer yet remains dangerous:
				// report with lower confidence, as real tools do for
				// "possibly insufficient sanitisation" findings.
				conf = 0.6
			}
			if _, dup := s.found[v.ID]; !dup {
				s.found[v.ID] = Report{
					Service:    s.svc.Name,
					SinkID:     v.ID,
					Kind:       v.Kind,
					Confidence: conf,
				}
			}
		}
	case svclang.Repeat:
		if !s.tool.cfg.TrackLoops {
			return false // loop body invisible to the analyser
		}
		// Three passes reach the fixpoint for this finite lattice and the
		// assignment chains the language allows; sinks are recorded on
		// every pass (deduplicated by ID).
		for i := 0; i < 3; i++ {
			if s.stmts(v.Body, env) {
				return false // reject inside a loop: conservatively continue
			}
		}
	case svclang.If:
		// Constant conditions: a pruning analyser follows only the live
		// branch.
		if lit, ok := v.Cond.(svclang.BoolLit); ok && s.tool.cfg.PruneDeadBranches {
			if lit.Value {
				return s.stmts(v.Then, env)
			}
			return s.stmts(v.Else, env)
		}
		thenEnv := env.clone()
		elseEnv := env.clone()
		thenRejects := s.stmts(v.Then, thenEnv)
		elseRejects := s.stmts(v.Else, elseEnv)
		switch {
		case thenRejects && elseRejects:
			return true
		case thenRejects:
			replace(env, elseEnv)
			s.applyValidator(v.Cond, false, env)
		case elseRejects:
			replace(env, thenEnv)
			s.applyValidator(v.Cond, true, env)
		default:
			replace(env, thenEnv)
			env.joinWith(elseEnv)
		}
	}
	return false
}

// replace overwrites dst with src in place.
func replace(dst, src absEnv) {
	for k := range dst {
		delete(dst, k)
	}
	for k, v := range src {
		dst[k] = v
	}
}

// applyValidator narrows the environment after a validate-and-reject
// pattern: when the surviving path implies matches(x, class), variable x
// is clean. condHolds states whether the condition is true on the
// surviving path.
func (s *taintState) applyValidator(cond svclang.Cond, condHolds bool, env absEnv) {
	if !s.tool.cfg.ValidatorAware {
		return
	}
	// Peel negations, flipping the polarity.
	for {
		if n, ok := cond.(svclang.Not); ok {
			cond = n.Inner
			condHolds = !condHolds
			continue
		}
		break
	}
	m, ok := cond.(svclang.Match)
	if !ok || !condHolds {
		return
	}
	id, ok := m.Expr.(svclang.Ident)
	if !ok {
		return
	}
	env[id.Name] = absVal{}
}

// expr computes the abstract value of an expression.
func (s *taintState) expr(e svclang.Expr, env absEnv) absVal {
	s.curEnv = env
	return evalExpr(s.tool.cfg, e, s)
}

// evalExpr computes the abstract value of an expression under the
// variable environment and abstract session store exposed by src. Both
// static engines — the AST walker above and the CFG dataflow engine in
// dataflowsast.go — share this definition, so any report divergence
// between them can only come from control flow, never from expression
// semantics.
func evalExpr(cfg TaintSASTConfig, e svclang.Expr, src absSource) absVal {
	switch v := e.(type) {
	case svclang.Lit:
		return absVal{}
	case svclang.Ident:
		return src.varAbs(v.Name)
	case svclang.LoadExpr:
		if !cfg.TrackStores {
			return absVal{} // blind to stored data
		}
		return src.storeAbs(v.Key)
	case svclang.Call:
		switch v.Fn {
		case svclang.BuiltinConcat:
			var out absVal
			for _, a := range v.Args {
				out = out.join(evalExpr(cfg, a, src))
			}
			return out
		case svclang.BuiltinUpper, svclang.BuiltinTrim:
			return evalExpr(cfg, v.Args[0], src)
		default:
			in := evalExpr(cfg, v.Args[0], src)
			out := absVal{sanitized: true}
			for _, k := range svclang.AllSinkKinds() {
				if in.dangerous&maskOf(k) != 0 && !cfg.sanitizesUnder(v.Fn, k) {
					out.dangerous |= maskOf(k)
				}
			}
			return out
		}
	default:
		return absVal{dangerous: allKindsMask()} // unknown node: be conservative
	}
}
