package faulty

import (
	"context"
	"errors"
	"strings"
	"testing"

	"github.com/dsn2015/vdbench/internal/detectors"
	"github.com/dsn2015/vdbench/internal/stats"
	"github.com/dsn2015/vdbench/internal/workload"
)

// stubTool is a deterministic inner tool: it reports every vulnerable
// sink of the case with fixed confidence.
type stubTool struct{ name string }

func (s stubTool) Name() string           { return s.name }
func (s stubTool) Class() detectors.Class { return detectors.ClassSAST }

func (s stubTool) Analyze(cs workload.Case, _ *stats.RNG) ([]detectors.Report, error) {
	var out []detectors.Report
	for _, tr := range cs.Truths {
		if tr.Vulnerable {
			out = append(out, detectors.Report{
				Service: cs.Service.Name, SinkID: tr.SinkID, Kind: tr.Kind, Confidence: 0.8,
			})
		}
	}
	return out, nil
}

func testCases(t *testing.T, services int) []workload.Case {
	t.Helper()
	c, err := workload.Generate(workload.Config{Services: services, TargetPrevalence: 0.4, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	return c.Cases
}

func mustWrap(t *testing.T, cfg Config) detectors.Tool {
	t.Helper()
	w, err := Wrap(stubTool{name: "stub"}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestWrapValidation(t *testing.T) {
	if _, err := Wrap(nil, Config{Mode: ModePanic}); err == nil {
		t.Error("nil inner accepted")
	}
	bad := []Config{
		{Mode: 0},
		{Mode: Mode(99)},
		{Mode: ModePanic, Rate: -0.1},
		{Mode: ModePanic, Rate: 1.5},
		{Mode: ModeTransient, FailuresBeforeSuccess: -1},
	}
	for _, cfg := range bad {
		if _, err := Wrap(stubTool{name: "s"}, cfg); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
}

func TestWrapperForwardsIdentity(t *testing.T) {
	w := mustWrap(t, Config{Mode: ModePanic, Rate: 0.5})
	if w.Name() != "stub" || w.Class() != detectors.ClassSAST {
		t.Fatalf("wrapper identity = %s/%v, want stub/SAST", w.Name(), w.Class())
	}
}

// TestAffectedDeterministicAndRateNested is the placement contract:
// whether a service is affected depends only on (Seed, tool, service),
// and the affected set at a lower rate is a subset of every higher rate,
// so E18's sweeps degrade the same cases as the rate grows.
func TestAffectedDeterministicAndRateNested(t *testing.T) {
	cases := testCases(t, 60)
	rates := []float64{0.01, 0.05, 0.10, 0.20, 0.30, 1}
	affectedAt := make([]map[string]bool, len(rates))
	for i, rate := range rates {
		w := mustWrap(t, Config{Mode: ModePanic, Rate: rate, Seed: 42}).(*tool)
		set := map[string]bool{}
		// Query in two different orders: the answer must not change.
		for _, cs := range cases {
			if w.affected(cs.Service.Name) {
				set[cs.Service.Name] = true
			}
		}
		for j := len(cases) - 1; j >= 0; j-- {
			if set[cases[j].Service.Name] != w.affected(cases[j].Service.Name) {
				t.Fatalf("rate %g: affected(%s) changed between calls", rate, cases[j].Service.Name)
			}
		}
		affectedAt[i] = set
	}
	if len(affectedAt[len(rates)-1]) != len(cases) {
		t.Fatalf("rate 1 affected %d of %d services", len(affectedAt[len(rates)-1]), len(cases))
	}
	for i := 1; i < len(rates); i++ {
		for svc := range affectedAt[i-1] {
			if !affectedAt[i][svc] {
				t.Fatalf("service %s affected at rate %g but not at %g (sets must nest)",
					svc, rates[i-1], rates[i])
			}
		}
	}
	// A different seed must place faults elsewhere (with overwhelming
	// probability at these sizes).
	other := mustWrap(t, Config{Mode: ModePanic, Rate: 0.3, Seed: 43}).(*tool)
	same := true
	for _, cs := range cases {
		w := mustWrap(t, Config{Mode: ModePanic, Rate: 0.3, Seed: 42}).(*tool)
		if w.affected(cs.Service.Name) != other.affected(cs.Service.Name) {
			same = false
			break
		}
	}
	if same {
		t.Error("seeds 42 and 43 produced identical fault placement")
	}
}

func TestModePanicPanicsOnAffectedCase(t *testing.T) {
	cases := testCases(t, 10)
	w := mustWrap(t, Config{Mode: ModePanic, Rate: 1})
	defer func() {
		if recover() == nil {
			t.Error("affected case did not panic")
		}
	}()
	_, _ = w.Analyze(cases[0], stats.NewRNG(1))
}

func TestModeHangReturnsOnCancel(t *testing.T) {
	cases := testCases(t, 10)
	w := mustWrap(t, Config{Mode: ModeHang, Rate: 1}).(*tool)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := w.AnalyzeContext(ctx, cases[0], stats.NewRNG(1))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("hang under canceled context returned %v", err)
	}
}

func TestModeTransientFailsThenRecovers(t *testing.T) {
	cases := testCases(t, 10)
	w := mustWrap(t, Config{Mode: ModeTransient, Rate: 1, FailuresBeforeSuccess: 2}).(*tool)
	rng := stats.NewRNG(1)
	for attempt := 1; attempt <= 2; attempt++ {
		_, err := w.Analyze(cases[0], rng)
		if err == nil || !detectors.IsRetryable(err) {
			t.Fatalf("attempt %d: err = %v, want retryable", attempt, err)
		}
		if !strings.Contains(err.Error(), "transient") {
			t.Fatalf("attempt %d error text: %v", attempt, err)
		}
	}
	reports, err := w.Analyze(cases[0], rng)
	if err != nil {
		t.Fatalf("attempt 3: %v", err)
	}
	want, _ := stubTool{name: "stub"}.Analyze(cases[0], stats.NewRNG(1))
	if len(reports) != len(want) {
		t.Fatalf("recovered attempt returned %d reports, want %d", len(reports), len(want))
	}
	// Other services keep independent counters.
	if _, err := w.Analyze(cases[1], rng); err == nil || !detectors.IsRetryable(err) {
		t.Fatalf("fresh service first attempt err = %v, want retryable", err)
	}
}

// TestModeByzantineComplements: the byzantine wrapper reports exactly
// the sinks the inner tool stayed silent on, and surfaces no error — the
// failure mode no ledger can record.
func TestModeByzantineComplements(t *testing.T) {
	cases := testCases(t, 10)
	w := mustWrap(t, Config{Mode: ModeByzantine, Rate: 1})
	cs := cases[0]
	honest, _ := stubTool{name: "stub"}.Analyze(cs, stats.NewRNG(1))
	lying, err := w.Analyze(cs, stats.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(honest)+len(lying) != len(cs.Truths) {
		t.Fatalf("complement sizes: honest %d + byzantine %d != %d sinks",
			len(honest), len(lying), len(cs.Truths))
	}
	reported := map[int]bool{}
	for _, r := range honest {
		reported[r.SinkID] = true
	}
	for _, r := range lying {
		if reported[r.SinkID] {
			t.Fatalf("byzantine wrapper repeated honest report for sink %d", r.SinkID)
		}
		if r.Service != cs.Service.Name {
			t.Fatalf("byzantine report names service %q", r.Service)
		}
	}
}

func TestUnaffectedCasesDelegate(t *testing.T) {
	cases := testCases(t, 40)
	w := mustWrap(t, Config{Mode: ModePanic, Rate: 0.2, Seed: 7}).(*tool)
	delegated := 0
	for _, cs := range cases {
		if w.affected(cs.Service.Name) {
			continue
		}
		got, err := w.Analyze(cs, stats.NewRNG(1))
		if err != nil {
			t.Fatalf("unaffected case errored: %v", err)
		}
		want, _ := stubTool{name: "stub"}.Analyze(cs, stats.NewRNG(1))
		if len(got) != len(want) {
			t.Fatalf("unaffected case: %d reports, want %d", len(got), len(want))
		}
		delegated++
	}
	if delegated == 0 {
		t.Fatal("rate 0.2 affected every case; placement hash is broken")
	}
}
