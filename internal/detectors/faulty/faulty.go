// Package faulty wraps detection tools with seeded, deterministic fault
// injection. Real benchmark campaigns routinely hit tools that crash,
// hang, flake or misreport; this package reproduces those failure modes
// on demand so the harness's fault-tolerant execution engine and the
// degradation experiment (E18) can measure exactly how partial tool
// failure distorts the published metrics.
//
// Fault placement is a pure function of (Seed, tool name, service name):
// whether a case is affected never depends on RNG draw order, worker
// count, or attempt number, so campaigns with injected faults stay
// byte-identical across serial and parallel execution.
package faulty

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"github.com/dsn2015/vdbench/internal/detectors"
	"github.com/dsn2015/vdbench/internal/stats"
	"github.com/dsn2015/vdbench/internal/svclang/cfg"
	"github.com/dsn2015/vdbench/internal/workload"
)

// Mode selects the injected failure behaviour on affected cases.
type Mode int

const (
	// ModePanic panics inside Analyze, exercising the engine's panic
	// isolation.
	ModePanic Mode = iota + 1
	// ModeHang blocks until the attempt context is cancelled, exercising
	// per-tool deadlines. The wrapper is context-aware: once the deadline
	// fires it returns promptly, so hung cases do not leak goroutines.
	ModeHang
	// ModeTransient fails the first FailuresBeforeSuccess attempts of an
	// affected case with a retryable error, then delegates to the wrapped
	// tool — the canonical flaky tool the retry policy exists for.
	ModeTransient
	// ModeByzantine returns plausible but wrong findings: the complement
	// of the wrapped tool's reports over the case's sink set. No error is
	// surfaced; this is the failure mode ledgers cannot catch and E18
	// uses it as the worst-case distortion bound.
	ModeByzantine
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModePanic:
		return "panic"
	case ModeHang:
		return "hang"
	case ModeTransient:
		return "transient"
	case ModeByzantine:
		return "byzantine"
	default:
		return "unknown"
	}
}

// Config parameterises a fault-injecting wrapper.
type Config struct {
	// Mode is the failure behaviour on affected cases.
	Mode Mode
	// Rate is the fraction of cases affected, in [0, 1]. Cases are
	// selected by a deterministic hash of (Seed, tool name, service
	// name); Rate 1 affects every case.
	Rate float64
	// Seed decorrelates fault placement between wrappers that share a
	// tool name and rate.
	Seed uint64
	// FailuresBeforeSuccess is how many attempts of an affected case fail
	// before the wrapped tool runs (ModeTransient only; default 1). A
	// retry budget below this leaves the case permanently failed.
	FailuresBeforeSuccess int
}

func (c Config) validate() error {
	switch c.Mode {
	case ModePanic, ModeHang, ModeTransient, ModeByzantine:
	default:
		return fmt.Errorf("faulty: unknown mode %d", int(c.Mode))
	}
	if c.Rate < 0 || c.Rate > 1 {
		return fmt.Errorf("faulty: rate %g out of [0,1]", c.Rate)
	}
	if c.FailuresBeforeSuccess < 0 {
		return errors.New("faulty: negative FailuresBeforeSuccess")
	}
	return nil
}

// tool is the fault-injecting wrapper. It presents the wrapped tool's
// name and class so campaign results line up column-for-column with the
// fault-free baseline.
type tool struct {
	inner detectors.Tool
	cfg   Config

	mu       sync.Mutex
	attempts map[string]int // per-service transient attempt counter
}

var (
	_ detectors.Tool            = (*tool)(nil)
	_ detectors.ContextAnalyzer = (*tool)(nil)
)

// Wrap decorates inner with deterministic fault injection. A wrapper
// instance carries per-case attempt state for ModeTransient, so use a
// fresh wrapper per campaign when reproducing runs.
func Wrap(inner detectors.Tool, cfg Config) (detectors.Tool, error) {
	if inner == nil {
		return nil, errors.New("faulty: nil inner tool")
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.FailuresBeforeSuccess == 0 {
		cfg.FailuresBeforeSuccess = 1
	}
	return &tool{inner: inner, cfg: cfg, attempts: map[string]int{}}, nil
}

func (t *tool) Name() string           { return t.inner.Name() }
func (t *tool) Class() detectors.Class { return t.inner.Class() }

// WithCompileCache forwards compile-cache binding to the wrapped tool
// when it supports it, preserving the harness's shared-lowering
// optimisation under fault injection.
func (t *tool) WithCompileCache(cc *cfg.Cache) detectors.Tool {
	cct, ok := t.inner.(detectors.CompileCacheable)
	if !ok {
		return t
	}
	return &tool{inner: cct.WithCompileCache(cc), cfg: t.cfg, attempts: map[string]int{}}
}

// Analyze implements detectors.Tool. ModeHang under a plain Analyze call
// blocks indefinitely — always run hang-wrapped tools through a
// context-aware engine with a deadline.
func (t *tool) Analyze(cs workload.Case, rng *stats.RNG) ([]detectors.Report, error) {
	return t.AnalyzeContext(context.Background(), cs, rng)
}

// AnalyzeContext implements detectors.ContextAnalyzer.
func (t *tool) AnalyzeContext(ctx context.Context, cs workload.Case, rng *stats.RNG) ([]detectors.Report, error) {
	if cs.Service == nil {
		return nil, errors.New("faulty: nil service")
	}
	if !t.affected(cs.Service.Name) {
		return t.analyzeInner(ctx, cs, rng)
	}
	switch t.cfg.Mode {
	case ModePanic:
		panic(fmt.Sprintf("faulty: injected panic in %s on %s", t.inner.Name(), cs.Service.Name))
	case ModeHang:
		<-ctx.Done()
		return nil, ctx.Err()
	case ModeTransient:
		t.mu.Lock()
		t.attempts[cs.Service.Name]++
		n := t.attempts[cs.Service.Name]
		t.mu.Unlock()
		if n <= t.cfg.FailuresBeforeSuccess {
			return nil, detectors.MarkRetryable(fmt.Errorf(
				"faulty: injected transient fault in %s on %s (attempt %d)", t.inner.Name(), cs.Service.Name, n))
		}
		return t.analyzeInner(ctx, cs, rng)
	case ModeByzantine:
		reports, err := t.analyzeInner(ctx, cs, rng)
		if err != nil {
			return nil, err
		}
		return complement(cs, reports), nil
	default:
		return nil, fmt.Errorf("faulty: unknown mode %d", int(t.cfg.Mode))
	}
}

// analyzeInner delegates to the wrapped tool, preferring its
// context-aware entry point when it has one.
func (t *tool) analyzeInner(ctx context.Context, cs workload.Case, rng *stats.RNG) ([]detectors.Report, error) {
	if ca, ok := t.inner.(detectors.ContextAnalyzer); ok {
		return ca.AnalyzeContext(ctx, cs, rng)
	}
	return t.inner.Analyze(cs, rng)
}

// affected reports whether fault injection fires on the named service.
// The decision hashes (Seed, tool name, service name) with FNV-1a so it
// is independent of execution order, worker count and attempt number.
func (t *tool) affected(service string) bool {
	if t.cfg.Rate <= 0 {
		return false
	}
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(s string) {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= prime64
		}
		h ^= 0xff // separator so ("ab","c") != ("a","bc")
		h *= prime64
	}
	for shift := 0; shift < 64; shift += 8 {
		h ^= (t.cfg.Seed >> shift) & 0xff
		h *= prime64
	}
	mix(t.inner.Name())
	mix(service)
	return float64(h>>11)/(1<<53) < t.cfg.Rate
}

// complement inverts a report set over the case's sinks: every reported
// sink is dropped and every unreported sink is reported with high
// confidence — deterministic, structurally valid, and maximally wrong.
func complement(cs workload.Case, reports []detectors.Report) []detectors.Report {
	reported := make(map[int]bool, len(reports))
	for _, r := range reports {
		reported[r.SinkID] = true
	}
	var out []detectors.Report
	for _, tr := range cs.Truths {
		if reported[tr.SinkID] {
			continue
		}
		out = append(out, detectors.Report{
			Service:    cs.Service.Name,
			SinkID:     tr.SinkID,
			Kind:       tr.Kind,
			Confidence: 0.9,
		})
	}
	return out
}
