module github.com/dsn2015/vdbench

go 1.22
