package vdbench

import (
	"strings"
	"testing"
)

func TestFacadeQuickstartFlow(t *testing.T) {
	corpus, err := GenerateWorkload(WorkloadConfig{
		Services:         40,
		TargetPrevalence: 0.35,
		Seed:             1,
	})
	if err != nil {
		t.Fatal(err)
	}
	tools, err := StandardTools()
	if err != nil {
		t.Fatal(err)
	}
	campaign, err := RunCampaign(corpus, tools, 1)
	if err != nil {
		t.Fatal(err)
	}
	recall := MustMetric("recall")
	for _, res := range campaign.Results {
		v, err := res.MetricValue(recall)
		if err != nil {
			t.Fatalf("%s: %v", res.Tool, err)
		}
		if v < 0 || v > 1 {
			t.Fatalf("%s recall = %g", res.Tool, v)
		}
	}
}

func TestFacadeParallelCampaignMatchesSerial(t *testing.T) {
	corpus, err := GenerateWorkload(WorkloadConfig{
		Services:         40,
		TargetPrevalence: 0.35,
		Seed:             1,
	})
	if err != nil {
		t.Fatal(err)
	}
	tools, err := StandardTools()
	if err != nil {
		t.Fatal(err)
	}
	serial, err := RunCampaign(corpus, tools, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 4} {
		par, err := RunCampaignParallel(corpus, tools, 1, workers)
		if err != nil {
			t.Fatal(err)
		}
		for i := range serial.Results {
			if par.Results[i].Overall != serial.Results[i].Overall {
				t.Fatalf("workers=%d: %s matrix diverged from serial", workers, serial.Results[i].Tool)
			}
		}
	}
}

func TestFacadeMetricLookup(t *testing.T) {
	if len(Metrics()) < 25 {
		t.Fatal("catalogue too small")
	}
	if _, ok := MetricByID("mcc"); !ok {
		t.Fatal("mcc missing")
	}
	if _, ok := MetricByID("bogus"); ok {
		t.Fatal("bogus metric resolved")
	}
}

func TestFacadeScenarioSelection(t *testing.T) {
	profiles, err := AnalyzeMetrics(PropConfig{
		MonotonicitySamples:  300,
		WorkloadSize:         600,
		StabilityTrials:      60,
		DiscriminationTrials: 80,
		Tolerance:            1e-9,
	}, 7)
	if err != nil {
		t.Fatal(err)
	}
	s, ok := ScenarioByID("dev-triage")
	if !ok {
		t.Fatal("dev-triage missing")
	}
	sel, err := SelectMetric(s, profiles)
	if err != nil {
		t.Fatal(err)
	}
	if sel.Best() == "" {
		t.Fatal("no winner")
	}
	val, err := ValidateSelection(s, profiles, 5, 0.1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !val.AHP.Consistency.Consistent() {
		t.Fatalf("CR = %g", val.AHP.Consistency.CR)
	}
}

func TestFacadeParsePrintRoundTrip(t *testing.T) {
	src := "service S\n  param x\n  sink sql concat(\"Q='\", x, \"'\")\nend\n"
	services, err := ParseServices(src)
	if err != nil {
		t.Fatal(err)
	}
	printed := PrintService(services[0])
	if !strings.Contains(printed, "sink sql") {
		t.Fatalf("printed form: %s", printed)
	}
}

func TestFacadeExperiments(t *testing.T) {
	if len(ExperimentIDs()) != 18 {
		t.Fatal("experiment registry wrong")
	}
	res, err := RunExperiment("e1", QuickExperimentConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.String(), "E1") {
		t.Fatal("experiment output malformed")
	}
	if _, err := RunExperiment("e1", ExperimentConfig{}); err == nil {
		t.Fatal("invalid config accepted")
	}
	if err := DefaultExperimentConfig().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeCriteria(t *testing.T) {
	if len(Criteria()) != 9 {
		t.Fatal("criteria catalogue wrong")
	}
	if len(Scenarios()) != 4 {
		t.Fatal("scenario catalogue wrong")
	}
}

func TestFacadeDefaultPropConfig(t *testing.T) {
	if err := DefaultPropConfig().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeCombineAndLoad(t *testing.T) {
	corpus, err := LoadWorkload(`
service A
  param x
  sink sql concat("Q='", x, "'")
end
`)
	if err != nil {
		t.Fatal(err)
	}
	if corpus.VulnerableSinks() != 1 {
		t.Fatalf("oracle label wrong: %d vulnerable", corpus.VulnerableSinks())
	}
	tools, err := StandardTools()
	if err != nil {
		t.Fatal(err)
	}
	combo, err := CombineTools("duo", Union, tools[:2])
	if err != nil {
		t.Fatal(err)
	}
	campaign, err := RunCampaign(corpus, []Tool{combo}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if campaign.Results[0].Overall.TP != 1 {
		t.Fatalf("combined tool missed the splice: %+v", campaign.Results[0].Overall)
	}
	if _, err := CombineTools("bad", CombineMode(99), tools[:2]); err == nil {
		t.Fatal("invalid mode accepted")
	}
	if _, err := LoadWorkload("garbage"); err == nil {
		t.Fatal("garbage corpus accepted")
	}
}

func TestFacadeStatsHelpers(t *testing.T) {
	iv, err := WilsonInterval(8, 10, 0.95)
	if err != nil || !iv.Contains(0.8) {
		t.Fatalf("Wilson = %+v, %v", iv, err)
	}
	corpus, err := GenerateWorkload(WorkloadConfig{Services: 30, TargetPrevalence: 0.4, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	tools, err := StandardTools()
	if err != nil {
		t.Fatal(err)
	}
	campaign, err := RunCampaign(corpus, tools, 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := CompareTools(&campaign.Results[0], &campaign.Results[1])
	if err != nil {
		t.Fatal(err)
	}
	if res.PValue < 0 || res.PValue > 1 {
		t.Fatalf("p = %g", res.PValue)
	}
	if _, err := CompareTools(nil, &campaign.Results[0]); err == nil {
		t.Fatal("nil result accepted")
	}
}

// TestFacadeServiceSurface covers the facade additions the service layer
// is built on: the experiment catalogue, the render-format list, and the
// workers-invariant cache key.
func TestFacadeServiceSurface(t *testing.T) {
	infos := Experiments()
	ids := ExperimentIDs()
	if len(infos) != len(ids) {
		t.Fatalf("Experiments() has %d entries, ExperimentIDs() %d", len(infos), len(ids))
	}
	for i, info := range infos {
		if info.ID != ids[i] || info.Title == "" {
			t.Fatalf("Experiments()[%d] = %+v, want ID %s with a title", i, info, ids[i])
		}
	}
	formats := ResultFormats()
	if len(formats) != 4 {
		t.Fatalf("ResultFormats() = %v", formats)
	}

	cfg := DefaultExperimentConfig()
	key := ExperimentCacheKey("e3", cfg)
	if len(key) != 64 {
		t.Fatalf("cache key %q is not a SHA-256 hex digest", key)
	}
	other := cfg
	other.Workers = cfg.Workers + 7
	if ExperimentCacheKey("e3", other) != key {
		t.Fatal("cache key depends on Workers; memoisation across worker counts broken")
	}
	other = cfg
	other.Seed++
	if ExperimentCacheKey("e3", other) == key {
		t.Fatal("cache key ignores the seed")
	}
}
