// Command wlgen generates labelled benchmark workloads in the textual
// service format, with a ground-truth sidecar in CSV.
//
// Usage:
//
//	wlgen [flags]
//
// Examples:
//
//	wlgen -services 200 -prevalence 0.35 -seed 1 > corpus.svc
//	wlgen -services 50 -kinds sql,xpath -truth truth.csv > corpus.svc
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"github.com/dsn2015/vdbench"
	"github.com/dsn2015/vdbench/internal/svclang"
	"github.com/dsn2015/vdbench/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "wlgen:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("wlgen", flag.ContinueOnError)
	var (
		services   = fs.Int("services", 100, "number of services to generate")
		prevalence = fs.Float64("prevalence", 0.35, "target fraction of vulnerable sinks")
		seed       = fs.Uint64("seed", 1, "generation seed")
		kinds      = fs.String("kinds", "", "comma-separated sink kinds (sql,xpath,html,cmd,path); empty = all")
		truthPath  = fs.String("truth", "", "also write the ground-truth CSV to this file")
		statsOnly  = fs.Bool("stats", false, "print corpus statistics instead of sources")
	)
	fs.SetOutput(out)
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := vdbench.WorkloadConfig{
		Services:         *services,
		TargetPrevalence: *prevalence,
		Seed:             *seed,
	}
	if *kinds != "" {
		for _, name := range strings.Split(*kinds, ",") {
			kind, ok := svclang.SinkKindFromString(strings.TrimSpace(name))
			if !ok {
				return fmt.Errorf("unknown sink kind %q", name)
			}
			cfg.Kinds = append(cfg.Kinds, kind)
		}
	}
	corpus, err := vdbench.GenerateWorkload(cfg)
	if err != nil {
		return err
	}
	if *truthPath != "" {
		if err := os.WriteFile(*truthPath, []byte(truthCSV(corpus)), 0o644); err != nil {
			return fmt.Errorf("write truth file: %w", err)
		}
	}
	if *statsOnly {
		fmt.Fprintf(out, "services: %d\nsinks: %d\nvulnerable: %d\nprevalence: %.4f\n",
			len(corpus.Cases), corpus.TotalSinks(), corpus.VulnerableSinks(), corpus.Prevalence())
		byKind := corpus.ByKind()
		for _, kind := range svclang.AllSinkKinds() {
			if n, ok := byKind[kind]; ok {
				fmt.Fprintf(out, "kind %s: %d sinks\n", kind, n)
			}
		}
		return nil
	}
	_, err = io.WriteString(out, corpus.Sources())
	return err
}

// truthCSV renders the ground-truth sidecar: one row per sink.
func truthCSV(corpus *workload.Corpus) string {
	var sb strings.Builder
	sb.WriteString("service,sink,kind,cwe,template,difficulty,vulnerable\n")
	for _, cs := range corpus.Cases {
		for _, tr := range cs.Truths {
			fmt.Fprintf(&sb, "%s,%d,%s,%s,%s,%s,%t\n",
				cs.Service.Name, tr.SinkID, tr.Kind, tr.Kind.CWE(),
				cs.Template, cs.Difficulty, tr.Vulnerable)
		}
	}
	return sb.String()
}
