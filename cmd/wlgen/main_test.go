package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/dsn2015/vdbench"
)

func TestRunGeneratesParsableCorpus(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-services", "15", "-seed", "3"}, &out); err != nil {
		t.Fatal(err)
	}
	services, err := vdbench.ParseServices(out.String())
	if err != nil {
		t.Fatalf("generated corpus does not parse: %v", err)
	}
	if len(services) != 15 {
		t.Fatalf("parsed %d services", len(services))
	}
}

func TestRunStats(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-services", "10", "-stats"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"services: 10", "prevalence:"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("stats output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunKindFilter(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-services", "10", "-kinds", "sql", "-stats"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "kind sql:") {
		t.Fatal("sql kind missing from stats")
	}
	if strings.Contains(out.String(), "kind html:") {
		t.Fatal("kind filter not applied")
	}
	if err := run([]string{"-kinds", "ldap"}, &out); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestRunTruthSidecar(t *testing.T) {
	dir := t.TempDir()
	truthPath := filepath.Join(dir, "truth.csv")
	var out strings.Builder
	if err := run([]string{"-services", "10", "-truth", truthPath}, &out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(truthPath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if lines[0] != "service,sink,kind,cwe,template,difficulty,vulnerable" {
		t.Fatalf("truth header = %q", lines[0])
	}
	if len(lines) < 11 {
		t.Fatalf("truth rows = %d", len(lines)-1)
	}
	if !strings.Contains(string(data), "CWE-") {
		t.Fatal("CWE column missing")
	}
}

func TestRunInvalidConfig(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-services", "0"}, &out); err == nil {
		t.Fatal("zero services accepted")
	}
	if err := run([]string{"-prevalence", "2"}, &out); err == nil {
		t.Fatal("prevalence > 1 accepted")
	}
}
