// Command vdbench reproduces the paper's tables and figures (experiments
// E1-E10, see DESIGN.md).
//
// Usage:
//
//	vdbench [flags] <experiment-id>|all
//
// Examples:
//
//	vdbench e4              # metric values per tool, default config
//	vdbench -quick all      # every experiment at reduced sample sizes
//	vdbench -format csv e5  # CSV output for downstream plotting
//	vdbench -seed 7 -services 1000 e3
//	vdbench -workers 8 e3   # campaign worker pool; output is identical
//	vdbench -tool-timeout 2s -retries 1 -degraded skip e18
//	vdbench -distributed http://127.0.0.1:8344 e3
//	                        # run the campaign on a vdserved -coordinator
//	                        # worker fleet; output is byte-identical
//
// SIGINT/SIGTERM abort the running campaign at its next (tool, case)
// cell via the context-first execution engine.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strings"
	"syscall"
	"time"

	"github.com/dsn2015/vdbench"
)

func main() {
	if err := run(context.Background(), os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "vdbench:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("vdbench", flag.ContinueOnError)
	var (
		quick        = fs.Bool("quick", false, "use the reduced smoke-run configuration")
		seed         = fs.Uint64("seed", 0, "override the experiment seed (0 = keep default)")
		services     = fs.Int("services", 0, "override the campaign corpus size (0 = keep default)")
		workers      = fs.Int("workers", runtime.GOMAXPROCS(0), "campaign worker-pool size (output is identical for every value)")
		toolTimeout  = fs.Duration("tool-timeout", 0, "per-tool deadline for each campaign case (0 = none, otherwise >= 1s)")
		retries      = fs.Int("retries", 0, "extra attempts for tool errors marked retryable")
		retryBackoff = fs.Duration("retry-backoff", 0, "wait before the first retry (doubles per retry)")
		degraded     = fs.String("degraded", "abort", "policy for cases a tool failed on: abort, skip or count-miss")
		interp       = fs.Bool("interpreter", false, "execute services on the reference tree-walking interpreter instead of the bytecode VM (output is identical, the VM is faster)")
		oracleExh    = fs.Bool("oracle-exhaustive", false, "derive ground truth with the unpruned exhaustive oracle search instead of the influence-guided one (output is identical, the pruned search is faster)")
		format       = fs.String("format", "text", "output format: text, csv, markdown or json (tables only for csv/markdown)")
		outDir       = fs.String("out", "", "also write per-experiment artefacts (.txt, .csv, .svg) into this directory")
		list         = fs.Bool("list", false, "list the available experiments and exit")
		distributed  = fs.String("distributed", "", "coordinator base URL; runs the benchmark campaign on its worker fleet (output is byte-identical to a local run)")
		shardCases   = fs.Int("shard-cases", 0, "corpus cases per distributed shard (0 = coordinator default; only with -distributed)")
	)
	fs.SetOutput(out)
	fs.Usage = func() {
		fmt.Fprintf(out, "usage: vdbench [flags] <experiment-id>|all\n\nexperiments: %s\n\nflags:\n",
			strings.Join(vdbench.ExperimentIDs(), ", "))
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, id := range vdbench.ExperimentIDs() {
			fmt.Fprintln(out, id)
		}
		return nil
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return fmt.Errorf("expected exactly one experiment ID, got %d arguments", fs.NArg())
	}
	if *workers <= 0 {
		return fmt.Errorf("-workers must be positive, got %d (campaign output is identical for every positive value)", *workers)
	}
	// Reject bad execution-policy flags here, with flag vocabulary, rather
	// than letting them surface as harness errors deep inside the first
	// campaign.
	if *retryBackoff < 0 {
		return fmt.Errorf("-retry-backoff must be non-negative, got %v", *retryBackoff)
	}
	if *toolTimeout < 0 || (*toolTimeout > 0 && *toolTimeout < time.Second) {
		return fmt.Errorf("-tool-timeout must be 0 (disabled) or at least 1s, got %v (a tighter deadline would make results hardware-dependent)", *toolTimeout)
	}
	if *shardCases < 0 {
		return fmt.Errorf("-shard-cases must be non-negative, got %d", *shardCases)
	}
	if *shardCases > 0 && *distributed == "" {
		return fmt.Errorf("-shard-cases only applies with -distributed")
	}
	policy, err := vdbench.ParseDegradedPolicy(*degraded)
	if err != nil {
		return err
	}
	cfg := vdbench.DefaultExperimentConfig()
	if *quick {
		cfg = vdbench.QuickExperimentConfig()
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	if *services != 0 {
		cfg.Services = *services
	}
	cfg.Workers = *workers
	cfg.PerToolTimeout = *toolTimeout
	cfg.Retry = vdbench.RetryPolicy{MaxRetries: *retries, Backoff: *retryBackoff}
	cfg.Degraded = policy
	cfg.Interpreter = *interp
	cfg.OracleExhaustive = *oracleExh
	target := strings.ToLower(fs.Arg(0))

	// Ctrl-C aborts the campaign at its next (tool, case) cell rather
	// than killing the process mid-write.
	ctx, stop := signal.NotifyContext(ctx, os.Interrupt, syscall.SIGTERM)
	defer stop()

	var results []vdbench.ExperimentResult
	switch {
	case target == "all" && *distributed != "":
		all, err := vdbench.RunAllExperimentsDistributedCtx(ctx, cfg, *distributed, *shardCases)
		if err != nil {
			return err
		}
		results = all
	case target == "all":
		all, err := vdbench.RunAllExperimentsCtx(ctx, cfg)
		if err != nil {
			return err
		}
		results = all
	case *distributed != "":
		res, err := vdbench.RunExperimentDistributedCtx(ctx, target, cfg, *distributed, *shardCases)
		if err != nil {
			return err
		}
		results = []vdbench.ExperimentResult{res}
	default:
		res, err := vdbench.RunExperimentCtx(ctx, target, cfg)
		if err != nil {
			return err
		}
		results = []vdbench.ExperimentResult{res}
	}
	for _, res := range results {
		if err := render(out, res, *format); err != nil {
			return err
		}
		if *outDir != "" {
			if err := writeArtefacts(*outDir, res); err != nil {
				return err
			}
		}
	}
	return nil
}

// writeArtefacts stores an experiment's rendered forms on disk: the full
// text, one CSV per table, and one SVG per figure.
func writeArtefacts(dir string, res vdbench.ExperimentResult) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("create output directory: %w", err)
	}
	write := func(name, content string) error {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			return fmt.Errorf("write %s: %w", path, err)
		}
		return nil
	}
	if err := write(res.ID+".txt", res.String()); err != nil {
		return err
	}
	if data, err := res.JSON(); err == nil {
		if err := write(res.ID+".json", string(data)+"\n"); err != nil {
			return err
		}
	}
	for i, t := range res.Tables {
		if err := write(fmt.Sprintf("%s_table%d.csv", res.ID, i+1), t.CSV()); err != nil {
			return err
		}
	}
	for i, f := range res.Figures {
		if err := write(fmt.Sprintf("%s_figure%d.svg", res.ID, i+1), f.SVG()); err != nil {
			return err
		}
	}
	return nil
}

// render writes the result in the requested format. All formats —
// including JSON — come from ExperimentResult.Render, the same code path
// the serving API (cmd/vdserved) responds with.
func render(out io.Writer, res vdbench.ExperimentResult, format string) error {
	s, err := res.Render(format)
	if err != nil {
		return err
	}
	_, err = io.WriteString(out, s)
	return err
}
