package main

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/dsn2015/vdbench/internal/dist"
)

func TestRunListsExperiments(t *testing.T) {
	var out strings.Builder
	if err := run(context.Background(), []string{"-list"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"e1", "e10"} {
		if !strings.Contains(out.String(), id) {
			t.Errorf("list output missing %s", id)
		}
	}
}

func TestRunSingleExperiment(t *testing.T) {
	var out strings.Builder
	if err := run(context.Background(), []string{"-quick", "e1"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Metric catalogue") {
		t.Fatalf("unexpected output: %.100s", out.String())
	}
}

func TestRunCSVFormat(t *testing.T) {
	var out strings.Builder
	if err := run(context.Background(), []string{"-quick", "-format", "csv", "e1"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out.String(), "id,name,") {
		t.Fatalf("CSV header missing: %.60s", out.String())
	}
}

func TestRunMarkdownFormat(t *testing.T) {
	var out strings.Builder
	if err := run(context.Background(), []string{"-quick", "-format", "markdown", "e1"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "| id | name |") {
		t.Fatalf("markdown header missing: %.80s", out.String())
	}
}

func TestRunJSONFormat(t *testing.T) {
	var out strings.Builder
	if err := run(context.Background(), []string{"-quick", "-format", "json", "e1"}, &out); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		ID     string            `json:"id"`
		Title  string            `json:"title"`
		Tables []json.RawMessage `json:"tables"`
	}
	if err := json.Unmarshal([]byte(out.String()), &decoded); err != nil {
		t.Fatalf("json output does not parse: %v\n%.120s", err, out.String())
	}
	if decoded.ID != "e1" || decoded.Title == "" || len(decoded.Tables) == 0 {
		t.Fatalf("json output shape wrong: %+v", decoded)
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{},                                        // no experiment
		{"e1", "e2"},                              // too many
		{"-quick", "e99"},                         // unknown experiment
		{"-quick", "-format", "xml", "e1"},        // unknown format
		{"-quick", "-services", "-5", "e3"},       // invalid override
		{"-quick", "-workers", "0", "e1"},         // workers must be positive
		{"-quick", "-workers", "-3", "e1"},        // workers must be positive
		{"-quick", "-degraded", "bogus", "e1"},    // unknown degraded policy
		{"-quick", "-tool-timeout", "10ms", "e1"}, // below the 1s floor
		{"-quick", "-retries", "-1", "e1"},        // negative retry budget
		{"-quick", "-retry-backoff", "-1s", "e1"}, // negative backoff
		{"-quick", "-tool-timeout", "-1s", "e1"},  // negative deadline
		{"-quick", "-shard-cases", "-1", "e1"},    // negative shard size
		{"-quick", "-shard-cases", "4", "e1"},     // -shard-cases without -distributed
	}
	for _, args := range cases {
		var out strings.Builder
		if err := run(context.Background(), args, &out); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestRunSeedOverrideChangesCampaign(t *testing.T) {
	var a, b strings.Builder
	if err := run(context.Background(), []string{"-quick", "-seed", "1", "e3"}, &a); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), []string{"-quick", "-seed", "2", "e3"}, &b); err != nil {
		t.Fatal(err)
	}
	if a.String() == b.String() {
		t.Fatal("different seeds produced identical campaigns")
	}
	var a2 strings.Builder
	if err := run(context.Background(), []string{"-quick", "-seed", "1", "e3"}, &a2); err != nil {
		t.Fatal(err)
	}
	if a.String() != a2.String() {
		t.Fatal("same seed produced different output")
	}
}

func TestRunWorkersFlagPreservesOutput(t *testing.T) {
	var serial, parallel strings.Builder
	if err := run(context.Background(), []string{"-quick", "-workers", "1", "e3"}, &serial); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), []string{"-quick", "-workers", "4", "e3"}, &parallel); err != nil {
		t.Fatal(err)
	}
	if serial.String() != parallel.String() {
		t.Fatal("-workers changed the experiment output")
	}
	var out strings.Builder
	if err := run(context.Background(), []string{"-quick", "-workers", "-3", "e3"}, &out); err == nil {
		t.Fatal("negative -workers accepted")
	}
}

// TestRunExecutionPolicyFlagsPreserveOutput: with the well-behaved
// standard suite no cell ever fails, so the execution-policy flags must
// not change any byte of the output (the cache-key exclusion relies on
// exactly this invariance).
func TestRunExecutionPolicyFlagsPreserveOutput(t *testing.T) {
	var plain, guarded strings.Builder
	if err := run(context.Background(), []string{"-quick", "e3"}, &plain); err != nil {
		t.Fatal(err)
	}
	args := []string{"-quick", "-tool-timeout", "30s", "-retries", "2", "-retry-backoff", "1ms", "-degraded", "skip", "e3"}
	if err := run(context.Background(), args, &guarded); err != nil {
		t.Fatal(err)
	}
	if plain.String() != guarded.String() {
		t.Fatal("execution-policy flags changed the output of a fault-free campaign")
	}
}

// TestRunOracleExhaustiveFlagPreservesOutput: the -oracle-exhaustive
// escape hatch re-derives every label the expensive way; the output
// must be byte-identical to the default influence-guided derivation
// (the cache-key exclusion relies on exactly this invariance).
func TestRunOracleExhaustiveFlagPreservesOutput(t *testing.T) {
	var pruned, exhaustive strings.Builder
	if err := run(context.Background(), []string{"-quick", "e3"}, &pruned); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), []string{"-quick", "-oracle-exhaustive", "e3"}, &exhaustive); err != nil {
		t.Fatal(err)
	}
	if pruned.String() != exhaustive.String() {
		t.Fatal("-oracle-exhaustive changed the experiment output")
	}
}

func TestRunOutDirWritesArtefacts(t *testing.T) {
	dir := t.TempDir()
	var out strings.Builder
	if err := run(context.Background(), []string{"-quick", "-out", dir, "e6"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"e6.txt", "e6_table1.csv", "e6_figure1.svg", "e6_figure2.svg"} {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("missing artefact %s: %v", name, err)
		}
		if len(data) == 0 {
			t.Fatalf("artefact %s is empty", name)
		}
	}
	svg, _ := os.ReadFile(filepath.Join(dir, "e6_figure1.svg"))
	if !strings.Contains(string(svg), "<svg") {
		t.Fatal("figure artefact is not SVG")
	}
}

// TestRunDistributedMatchesLocal runs an experiment through the
// -distributed flag against an in-process coordinator with two workers
// and requires the rendered output to be byte-identical to the plain
// local run.
func TestRunDistributedMatchesLocal(t *testing.T) {
	coord := dist.NewCoordinator(dist.CoordinatorOptions{})
	srv := httptest.NewServer(coord.Handler())
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wk := dist.NewWorker(dist.WorkerOptions{Join: srv.URL, PollInterval: 5 * time.Millisecond})
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := wk.Run(ctx); err != nil {
				t.Errorf("worker: %v", err)
			}
		}()
	}
	defer func() {
		cancel()
		wg.Wait()
		srv.Close()
		if err := coord.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}()

	var local, remote strings.Builder
	if err := run(context.Background(), []string{"-quick", "e3"}, &local); err != nil {
		t.Fatal(err)
	}
	args := []string{"-quick", "-distributed", srv.URL, "-shard-cases", "3", "e3"}
	if err := run(context.Background(), args, &remote); err != nil {
		t.Fatal(err)
	}
	if local.String() != remote.String() {
		t.Fatal("-distributed changed the experiment output")
	}
}
