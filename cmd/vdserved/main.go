// Command vdserved serves the benchmark as a JSON API: experiments are
// submitted as jobs, executed on a bounded worker pool, memoised in a
// content-addressed result cache (sound because experiment output is a
// pure function of the configuration, workers excluded), and exposed
// with Prometheus-style telemetry.
//
// Usage:
//
//	vdserved [flags]
//
// Endpoints:
//
//	POST   /v1/jobs             {"experiment":"e3","quick":true,...}
//	GET    /v1/jobs/{id}        status + queue position
//	GET    /v1/jobs/{id}/result ?format=text|csv|markdown|json, optional ?wait=30s
//	DELETE /v1/jobs/{id}        cancel a queued or running job
//	GET    /v1/experiments      catalogue
//	GET    /healthz             liveness
//	GET    /metrics             telemetry snapshot
//
// SIGINT/SIGTERM trigger a graceful shutdown: queued jobs are canceled
// and in-flight HTTP requests plus running campaigns get the -drain
// budget to finish; campaigns still running when it expires are aborted
// at their next (tool, case) cell.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/dsn2015/vdbench"
	"github.com/dsn2015/vdbench/internal/service"
)

func main() {
	if err := run(context.Background(), os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "vdserved:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("vdserved", flag.ContinueOnError)
	var (
		addr            = fs.String("addr", "127.0.0.1:8344", "listen address")
		workers         = fs.Int("workers", 2, "job worker-pool size (concurrent campaigns)")
		campaignWorkers = fs.Int("campaign-workers", 0, "per-campaign worker budget (0 = all cores; results are identical for every value)")
		queueCap        = fs.Int("queue", 64, "maximum queued jobs")
		cacheMB         = fs.Int64("cache-mb", 256, "result-cache byte budget in MiB (0 disables)")
		quick           = fs.Bool("quick", false, "use the reduced smoke-run configuration as the base config")
		toolTimeout     = fs.Duration("tool-timeout", 0, "per-tool deadline for each campaign case (0 = none, otherwise >= 1s)")
		retries         = fs.Int("retries", 0, "extra attempts for tool errors marked retryable")
		retryBackoff    = fs.Duration("retry-backoff", 0, "wait before the first retry (doubles per retry)")
		degraded        = fs.String("degraded", "abort", "policy for cases a tool failed on: abort, skip or count-miss")
		interp          = fs.Bool("interpreter", false, "execute services on the reference tree-walking interpreter instead of the bytecode VM (output is identical, the VM is faster)")
		drain           = fs.Duration("drain", 30*time.Second, "graceful-shutdown budget for in-flight HTTP requests and running campaigns")
	)
	fs.SetOutput(out)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("unexpected arguments %v", fs.Args())
	}
	if *workers <= 0 {
		return fmt.Errorf("-workers must be positive, got %d", *workers)
	}
	if *campaignWorkers < 0 {
		return fmt.Errorf("-campaign-workers must be non-negative, got %d (results are identical for every value)", *campaignWorkers)
	}
	policy, err := vdbench.ParseDegradedPolicy(*degraded)
	if err != nil {
		return err
	}
	base := vdbench.DefaultExperimentConfig()
	if *quick {
		base = vdbench.QuickExperimentConfig()
	}
	base.Workers = *campaignWorkers
	base.PerToolTimeout = *toolTimeout
	base.Retry = vdbench.RetryPolicy{MaxRetries: *retries, Backoff: *retryBackoff}
	base.Degraded = policy
	base.Interpreter = *interp
	if err := base.Validate(); err != nil {
		return err
	}
	cacheBytes := *cacheMB << 20
	if *cacheMB == 0 {
		cacheBytes = -1 // Options treats 0 as "default"; negative disables
	}
	svc := service.New(service.Options{
		Workers:    *workers,
		QueueCap:   *queueCap,
		CacheBytes: cacheBytes,
		BaseConfig: base,
	})

	ctx, stop := signal.NotifyContext(ctx, os.Interrupt, syscall.SIGTERM)
	defer stop()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		svc.Close()
		return err
	}
	srv := &http.Server{
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       60 * time.Second,
	}
	fmt.Fprintf(out, "vdserved listening on http://%s\n", ln.Addr())

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	select {
	case err := <-errc:
		svc.Close()
		return err
	case <-ctx.Done():
	}
	fmt.Fprintln(out, "vdserved: shutting down (draining running campaigns)")
	//vdlint:ignore ctxflow ctx is already cancelled here; the drain budget needs a fresh root or shutdown would abort instantly
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	shutdownErr := srv.Shutdown(shutdownCtx)
	// Cancels queued jobs immediately; running campaigns share the drain
	// budget and are aborted at their next case boundary when it expires.
	svc.Shutdown(shutdownCtx)
	if shutdownErr != nil && !errors.Is(shutdownErr, http.ErrServerClosed) {
		return shutdownErr
	}
	return nil
}
