// Command vdserved serves the benchmark as a JSON API: experiments are
// submitted as jobs, executed on a bounded worker pool, memoised in a
// content-addressed result cache (sound because experiment output is a
// pure function of the configuration, workers excluded), and exposed
// with Prometheus-style telemetry.
//
// Usage:
//
//	vdserved [flags]                          # experiment job API (default mode)
//	vdserved -coordinator [flags]             # distributed-campaign coordinator
//	vdserved -worker -join <url> [flags]      # distributed-campaign worker
//
// Default-mode endpoints:
//
//	POST   /v1/jobs             {"experiment":"e3","quick":true,...}
//	GET    /v1/jobs             list jobs (?state=, ?cursor=, ?limit=)
//	GET    /v1/jobs/{id}        status + queue position
//	GET    /v1/jobs/{id}/result ?format=text|csv|markdown|json, optional ?wait=30s
//	GET    /v1/jobs/{id}/events SSE stream of live campaign progress
//	DELETE /v1/jobs/{id}        cancel a queued or running job
//	GET    /v1/experiments      catalogue
//	GET    /healthz/live        process liveness
//	GET    /healthz/ready       readiness (503 while draining)
//	GET    /healthz             compatibility alias for liveness
//	GET    /metrics             telemetry snapshot
//
// In -coordinator mode the process serves the internal/dist protocol
// (shard leasing, heartbeats, campaign submission — see the dist package
// docs) plus the same health and metrics endpoints. In -worker mode it
// joins a coordinator, pulls and executes shards, and serves only
// health and metrics locally.
//
// SIGINT/SIGTERM trigger a graceful shutdown: readiness flips to 503
// first, then queued work is canceled and in-flight HTTP requests plus
// running campaigns get the -drain budget to finish; campaigns still
// running when it expires are aborted at their next (tool, case) cell.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"

	"github.com/dsn2015/vdbench"
	"github.com/dsn2015/vdbench/internal/dist"
	"github.com/dsn2015/vdbench/internal/service"
)

func main() {
	if err := run(context.Background(), os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "vdserved:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("vdserved", flag.ContinueOnError)
	var (
		addr            = fs.String("addr", "127.0.0.1:8344", "listen address")
		workers         = fs.Int("workers", 2, "job worker-pool size (concurrent campaigns)")
		campaignWorkers = fs.Int("campaign-workers", 0, "per-campaign worker budget (0 = all cores; results are identical for every value)")
		queueCap        = fs.Int("queue", 64, "maximum queued jobs")
		cacheMB         = fs.Int64("cache-mb", 256, "result-cache byte budget in MiB (0 disables)")
		quick           = fs.Bool("quick", false, "use the reduced smoke-run configuration as the base config")
		toolTimeout     = fs.Duration("tool-timeout", 0, "per-tool deadline for each campaign case (0 = none, otherwise >= 1s)")
		retries         = fs.Int("retries", 0, "extra attempts for tool errors marked retryable")
		retryBackoff    = fs.Duration("retry-backoff", 0, "wait before the first retry (doubles per retry)")
		degraded        = fs.String("degraded", "abort", "policy for cases a tool failed on: abort, skip or count-miss")
		interp          = fs.Bool("interpreter", false, "execute services on the reference tree-walking interpreter instead of the bytecode VM (output is identical, the VM is faster)")
		oracleExh       = fs.Bool("oracle-exhaustive", false, "derive ground truth with the unpruned exhaustive oracle search instead of the influence-guided one (output is identical, the pruned search is faster)")
		dataDir         = fs.String("data-dir", "", "directory for the durable job store (journal + content-addressed results); empty keeps jobs in memory only")
		drain           = fs.Duration("drain", 30*time.Second, "graceful-shutdown budget for in-flight HTTP requests and running campaigns")
		coordinator     = fs.Bool("coordinator", false, "serve the distributed-campaign coordinator instead of the experiment job API")
		workerMode      = fs.Bool("worker", false, "run as a distributed-campaign worker; requires -join")
		join            = fs.String("join", "", "coordinator base URL for -worker mode, e.g. http://127.0.0.1:8344")
		hbInterval      = fs.Duration("heartbeat-interval", 0, "coordinator: worker heartbeat cadence (0 = 1s)")
		hbTimeout       = fs.Duration("heartbeat-timeout", 0, "coordinator: silence before a worker's shards are reassigned (0 = 5 intervals)")
	)
	fs.SetOutput(out)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("unexpected arguments %v", fs.Args())
	}
	// Reject bad execution-policy flags here, with flag vocabulary, rather
	// than letting them surface as harness errors deep inside the first
	// campaign.
	if *retryBackoff < 0 {
		return fmt.Errorf("-retry-backoff must be non-negative, got %v", *retryBackoff)
	}
	if *toolTimeout < 0 || (*toolTimeout > 0 && *toolTimeout < time.Second) {
		return fmt.Errorf("-tool-timeout must be 0 (disabled) or at least 1s, got %v (a tighter deadline would make results hardware-dependent)", *toolTimeout)
	}
	if *coordinator && *workerMode {
		return errors.New("-coordinator and -worker are mutually exclusive")
	}
	if *workerMode && *join == "" {
		return errors.New("-worker requires -join <coordinator URL>")
	}
	if *join != "" && !*workerMode {
		return errors.New("-join only applies to -worker mode")
	}
	if (*hbInterval != 0 || *hbTimeout != 0) && !*coordinator {
		return errors.New("-heartbeat-interval and -heartbeat-timeout only apply to -coordinator mode")
	}
	if *dataDir != "" && (*coordinator || *workerMode) {
		return errors.New("-data-dir only applies to the experiment job API (default mode)")
	}
	if *hbInterval < 0 || *hbTimeout < 0 {
		return errors.New("heartbeat durations must be non-negative")
	}
	if *coordinator {
		return runCoordinator(ctx, *addr, *drain, *hbInterval, *hbTimeout, out)
	}
	if *workerMode {
		return runWorker(ctx, *addr, *join, out)
	}
	if *workers <= 0 {
		return fmt.Errorf("-workers must be positive, got %d", *workers)
	}
	if *campaignWorkers < 0 {
		return fmt.Errorf("-campaign-workers must be non-negative, got %d (results are identical for every value)", *campaignWorkers)
	}
	policy, err := vdbench.ParseDegradedPolicy(*degraded)
	if err != nil {
		return err
	}
	base := vdbench.DefaultExperimentConfig()
	if *quick {
		base = vdbench.QuickExperimentConfig()
	}
	base.Workers = *campaignWorkers
	base.PerToolTimeout = *toolTimeout
	base.Retry = vdbench.RetryPolicy{MaxRetries: *retries, Backoff: *retryBackoff}
	base.Degraded = policy
	base.Interpreter = *interp
	base.OracleExhaustive = *oracleExh
	if err := base.Validate(); err != nil {
		return err
	}
	cacheBytes := *cacheMB << 20
	if *cacheMB == 0 {
		cacheBytes = -1 // Options treats 0 as "default"; negative disables
	}
	svc, err := service.New(service.Options{
		Workers:    *workers,
		QueueCap:   *queueCap,
		CacheBytes: cacheBytes,
		BaseConfig: base,
		DataDir:    *dataDir,
	})
	if err != nil {
		return err
	}
	if *dataDir != "" {
		rec := svc.Recovery()
		fmt.Fprintf(out, "vdserved: recovered %d journal records from %s: %d jobs restored, %d results rehydrated, %d jobs requeued (%d torn records, %d missing blobs, %d orphan blobs)\n",
			rec.Records, *dataDir, rec.Restored, rec.Rehydrated, rec.Requeued, rec.Torn, rec.MissingBlobs, rec.OrphanBlobs)
	}

	ctx, stop := signal.NotifyContext(ctx, os.Interrupt, syscall.SIGTERM)
	defer stop()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		svc.Close()
		return err
	}
	srv := &http.Server{
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       60 * time.Second,
	}
	fmt.Fprintf(out, "vdserved listening on http://%s\n", ln.Addr())

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	select {
	case err := <-errc:
		svc.Close()
		return err
	case <-ctx.Done():
	}
	fmt.Fprintln(out, "vdserved: shutting down (draining running campaigns)")
	// Flip readiness first so health-checkers stop routing work here
	// while the listener is still answering in-flight requests.
	svc.BeginDrain()
	//vdlint:ignore ctxflow ctx is already cancelled here; the drain budget needs a fresh root or shutdown would abort instantly
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	shutdownErr := srv.Shutdown(shutdownCtx)
	// Cancels queued jobs immediately; running campaigns share the drain
	// budget and are aborted at their next case boundary when it expires.
	svc.Shutdown(shutdownCtx)
	if shutdownErr != nil && !errors.Is(shutdownErr, http.ErrServerClosed) {
		return shutdownErr
	}
	return nil
}

// runCoordinator serves the internal/dist coordinator until ctx is
// cancelled by a signal.
func runCoordinator(ctx context.Context, addr string, drain, hbInterval, hbTimeout time.Duration, out io.Writer) error {
	coord := dist.NewCoordinator(dist.CoordinatorOptions{
		HeartbeatInterval: hbInterval,
		HeartbeatTimeout:  hbTimeout,
	})

	ctx, stop := signal.NotifyContext(ctx, os.Interrupt, syscall.SIGTERM)
	defer stop()

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		_ = coord.Close()
		return err
	}
	srv := &http.Server{
		Handler:           coord.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       60 * time.Second,
	}
	fmt.Fprintf(out, "vdserved coordinator listening on http://%s\n", ln.Addr())

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	select {
	case err := <-errc:
		_ = coord.Close()
		return err
	case <-ctx.Done():
	}
	fmt.Fprintln(out, "vdserved: coordinator shutting down")
	// Readiness off first, then stop the listener, then fail whatever
	// campaigns are still running.
	coord.BeginDrain()
	//vdlint:ignore ctxflow ctx is already cancelled here; the drain budget needs a fresh root or shutdown would abort instantly
	shutdownCtx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	shutdownErr := srv.Shutdown(shutdownCtx)
	if err := coord.Close(); err != nil {
		return err
	}
	if shutdownErr != nil && !errors.Is(shutdownErr, http.ErrServerClosed) {
		return shutdownErr
	}
	return nil
}

// runWorker joins a coordinator and executes shards until ctx is
// cancelled by a signal. The local listener serves only health and
// metrics: readiness reflects a live registration and flips off the
// moment shutdown begins.
func runWorker(ctx context.Context, addr, join string, out io.Writer) error {
	wk := dist.NewWorker(dist.WorkerOptions{Join: join})

	ctx, stop := signal.NotifyContext(ctx, os.Interrupt, syscall.SIGTERM)
	defer stop()

	var draining atomic.Bool
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz/live", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = io.WriteString(w, "ok\n")
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = io.WriteString(w, "ok\n")
	})
	mux.HandleFunc("GET /healthz/ready", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if draining.Load() || !wk.Ready() {
			w.WriteHeader(http.StatusServiceUnavailable)
			_, _ = io.WriteString(w, "draining\n")
			return
		}
		_, _ = io.WriteString(w, "ok\n")
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_, _ = io.WriteString(w, wk.Registry().Snapshot())
	})

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	srv := &http.Server{
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       60 * time.Second,
	}
	fmt.Fprintf(out, "vdserved worker listening on http://%s (joining %s)\n", ln.Addr(), join)

	srvErr := make(chan error, 1)
	go func() { srvErr <- srv.Serve(ln) }()
	workErr := make(chan error, 1)
	go func() { workErr <- wk.Run(ctx) }()

	select {
	case err := <-srvErr:
		stop() // tear the worker loop down with the listener
		<-workErr
		return err
	case err := <-workErr:
		// Run returns nil only on cancellation; any return here while the
		// listener is still up ends the process.
		_ = srv.Close()
		<-srvErr
		return err
	case <-ctx.Done():
	}
	fmt.Fprintln(out, "vdserved: worker shutting down")
	draining.Store(true)
	// The worker loop observes ctx and stops pulling; a shard mid-flight
	// is abandoned and the coordinator's heartbeat timeout reassigns it.
	<-workErr
	//vdlint:ignore ctxflow ctx is already cancelled here; the drain budget needs a fresh root or shutdown would abort instantly
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
