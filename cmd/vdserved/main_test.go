package main

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncWriter makes the daemon's log output safe to read while run() is
// still writing from its own goroutine.
type syncWriter struct {
	mu sync.Mutex
	sb strings.Builder
}

func (w *syncWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.sb.Write(p)
}

func (w *syncWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.sb.String()
}

func TestRunRejectsBadFlags(t *testing.T) {
	cases := [][]string{
		{"-workers", "0"},
		{"-workers", "-2"},
		{"positional"},
		{"-addr", "not a real:address:at:all"},
	}
	for _, args := range cases {
		var out syncWriter
		if err := run(context.Background(), args, &out); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

// TestRunServeAndGracefulShutdown boots the daemon on an ephemeral port,
// drives a job through the live API, then cancels the context (the
// signal path) and asserts a clean drain.
func TestRunServeAndGracefulShutdown(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var out syncWriter
	done := make(chan error, 1)
	go func() { done <- run(ctx, []string{"-addr", "127.0.0.1:0", "-quick", "-workers", "1"}, &out) }()

	// Wait for the listener line to learn the bound address.
	var base string
	deadline := time.Now().Add(30 * time.Second)
	for base == "" {
		if time.Now().After(deadline) {
			t.Fatalf("daemon never announced its address; output:\n%s", out.String())
		}
		for _, line := range strings.Split(out.String(), "\n") {
			if rest, ok := strings.CutPrefix(line, "vdserved listening on "); ok {
				base = strings.TrimSpace(rest)
			}
		}
		time.Sleep(10 * time.Millisecond)
	}

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || string(body) != "ok\n" {
		t.Fatalf("healthz = %d %q", resp.StatusCode, body)
	}

	resp, err = http.Post(base+"/v1/jobs", "application/json",
		strings.NewReader(`{"experiment":"e1"}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d: %s", resp.StatusCode, body)
	}
	var st struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &st); err != nil || st.ID == "" {
		t.Fatalf("submit body: %v %s", err, body)
	}
	resp, err = http.Get(base + "/v1/jobs/" + st.ID + "/result?wait=60s")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(body) == 0 {
		t.Fatalf("result = %d (%d bytes)", resp.StatusCode, len(body))
	}

	// The signal path: cancel the context and expect a clean drain.
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v; output:\n%s", err, out.String())
		}
	case <-time.After(60 * time.Second):
		t.Fatalf("daemon did not shut down; output:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "shutting down (draining running campaigns)") {
		t.Fatalf("no graceful-shutdown notice:\n%s", out.String())
	}
}
