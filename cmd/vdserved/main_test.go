package main

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/dsn2015/vdbench/internal/detectors"
	"github.com/dsn2015/vdbench/internal/dist"
	"github.com/dsn2015/vdbench/internal/harness"
	"github.com/dsn2015/vdbench/internal/workload"
)

// syncWriter makes the daemon's log output safe to read while run() is
// still writing from its own goroutine.
type syncWriter struct {
	mu sync.Mutex
	sb strings.Builder
}

func (w *syncWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.sb.Write(p)
}

func (w *syncWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.sb.String()
}

func TestRunRejectsBadFlags(t *testing.T) {
	cases := [][]string{
		{"-workers", "0"},
		{"-workers", "-2"},
		{"positional"},
		{"-addr", "not a real:address:at:all"},
		{"-retry-backoff", "-1s"},                        // negative backoff
		{"-tool-timeout", "-1s"},                         // negative deadline
		{"-tool-timeout", "10ms"},                        // below the 1s floor
		{"-coordinator", "-worker", "-join", "http://x"}, // mutually exclusive modes
		{"-worker"},                                      // -worker without -join
		{"-join", "http://x"},                            // -join without -worker
		{"-heartbeat-interval", "1s"},                    // heartbeat flags need -coordinator
		{"-coordinator", "-heartbeat-interval", "-1s"},   // negative heartbeat cadence
		{"-coordinator", "-heartbeat-timeout", "-1s"},    // negative heartbeat timeout
	}
	for _, args := range cases {
		var out syncWriter
		if err := run(context.Background(), args, &out); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

// TestRunOracleExhaustiveFlagParses pins the -oracle-exhaustive escape
// hatch into the flag set: parsing must get past the flag (and then
// fail on the deliberate positional argument) rather than reject it as
// undefined.
func TestRunOracleExhaustiveFlagParses(t *testing.T) {
	var out syncWriter
	err := run(context.Background(), []string{"-oracle-exhaustive", "positional"}, &out)
	if err == nil || !strings.Contains(err.Error(), "unexpected arguments") {
		t.Fatalf("-oracle-exhaustive not accepted by the flag set: %v", err)
	}
}

// TestRunServeAndGracefulShutdown boots the daemon on an ephemeral port,
// drives a job through the live API, then cancels the context (the
// signal path) and asserts a clean drain.
func TestRunServeAndGracefulShutdown(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var out syncWriter
	done := make(chan error, 1)
	go func() { done <- run(ctx, []string{"-addr", "127.0.0.1:0", "-quick", "-workers", "1"}, &out) }()

	// Wait for the listener line to learn the bound address.
	var base string
	deadline := time.Now().Add(30 * time.Second)
	for base == "" {
		if time.Now().After(deadline) {
			t.Fatalf("daemon never announced its address; output:\n%s", out.String())
		}
		for _, line := range strings.Split(out.String(), "\n") {
			if rest, ok := strings.CutPrefix(line, "vdserved listening on "); ok {
				base = strings.TrimSpace(rest)
			}
		}
		time.Sleep(10 * time.Millisecond)
	}

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || string(body) != "ok\n" {
		t.Fatalf("healthz = %d %q", resp.StatusCode, body)
	}

	resp, err = http.Post(base+"/v1/jobs", "application/json",
		strings.NewReader(`{"experiment":"e1"}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d: %s", resp.StatusCode, body)
	}
	var st struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &st); err != nil || st.ID == "" {
		t.Fatalf("submit body: %v %s", err, body)
	}
	resp, err = http.Get(base + "/v1/jobs/" + st.ID + "/result?wait=60s")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(body) == 0 {
		t.Fatalf("result = %d (%d bytes)", resp.StatusCode, len(body))
	}

	// The signal path: cancel the context and expect a clean drain.
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v; output:\n%s", err, out.String())
		}
	case <-time.After(60 * time.Second):
		t.Fatalf("daemon did not shut down; output:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "shutting down (draining running campaigns)") {
		t.Fatalf("no graceful-shutdown notice:\n%s", out.String())
	}
}

// waitForListener polls the daemon's output until a line with the given
// prefix announces the bound address.
func waitForListener(t *testing.T, out *syncWriter, prefix string) string {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatalf("no %q line; output:\n%s", prefix, out.String())
		}
		for _, line := range strings.Split(out.String(), "\n") {
			if rest, ok := strings.CutPrefix(line, prefix); ok {
				if i := strings.IndexByte(rest, ' '); i >= 0 {
					rest = rest[:i]
				}
				return strings.TrimSpace(rest)
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestRunDistributedSmoke is the tier-1 end-to-end check of the
// distributed modes: one vdserved coordinator plus two vdserved workers,
// all booted through run() exactly as the CLI would, executing a small
// campaign that must deep-equal the plain in-process run.
func TestRunDistributedSmoke(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var coordOut syncWriter
	done := make(chan error, 3)
	go func() {
		done <- run(ctx, []string{"-coordinator", "-addr", "127.0.0.1:0",
			"-heartbeat-interval", "50ms"}, &coordOut)
	}()
	base := waitForListener(t, &coordOut, "vdserved coordinator listening on ")

	var w1, w2 syncWriter
	go func() { done <- run(ctx, []string{"-worker", "-join", base, "-addr", "127.0.0.1:0"}, &w1) }()
	go func() { done <- run(ctx, []string{"-worker", "-join", base, "-addr", "127.0.0.1:0"}, &w2) }()

	// Readiness flips once the worker has a live registration.
	for _, wout := range []*syncWriter{&w1, &w2} {
		addr := waitForListener(t, wout, "vdserved worker listening on ")
		deadline := time.Now().Add(30 * time.Second)
		for {
			resp, err := http.Get(addr + "/healthz/ready")
			if err == nil {
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					break
				}
			}
			if time.Now().After(deadline) {
				t.Fatalf("worker %s never became ready", addr)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}

	wcfg := workload.Config{Services: 8, TargetPrevalence: 0.5, Seed: 3}
	opts := harness.Options{Seed: 3, Workers: 2}

	corpus, err := workload.Generate(wcfg)
	if err != nil {
		t.Fatal(err)
	}
	tools, err := detectors.StandardSuite()
	if err != nil {
		t.Fatal(err)
	}
	want, err := harness.RunCtx(context.Background(), corpus, tools, opts)
	if err != nil {
		t.Fatal(err)
	}

	client := dist.NewClient(base)
	client.PollWait = 100 * time.Millisecond
	got, err := client.RunCampaign(ctx, dist.CampaignSpec{
		Workload:   wcfg,
		Suite:      "standard",
		Options:    opts,
		ShardCases: 3, // several shards, so both workers get work
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("distributed campaign differs from local run")
	}

	cancel()
	for i := 0; i < 3; i++ {
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("run returned %v", err)
			}
		case <-time.After(60 * time.Second):
			t.Fatalf("processes did not shut down; coordinator output:\n%s", coordOut.String())
		}
	}
}
