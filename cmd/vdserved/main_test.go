package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"reflect"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"github.com/dsn2015/vdbench"
	"github.com/dsn2015/vdbench/internal/detectors"
	"github.com/dsn2015/vdbench/internal/dist"
	"github.com/dsn2015/vdbench/internal/harness"
	"github.com/dsn2015/vdbench/internal/workload"
)

// syncWriter makes the daemon's log output safe to read while run() is
// still writing from its own goroutine.
type syncWriter struct {
	mu sync.Mutex
	sb strings.Builder
}

func (w *syncWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.sb.Write(p)
}

func (w *syncWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.sb.String()
}

func TestRunRejectsBadFlags(t *testing.T) {
	cases := [][]string{
		{"-workers", "0"},
		{"-workers", "-2"},
		{"positional"},
		{"-addr", "not a real:address:at:all"},
		{"-retry-backoff", "-1s"},                        // negative backoff
		{"-tool-timeout", "-1s"},                         // negative deadline
		{"-tool-timeout", "10ms"},                        // below the 1s floor
		{"-coordinator", "-worker", "-join", "http://x"}, // mutually exclusive modes
		{"-worker"},                                      // -worker without -join
		{"-join", "http://x"},                            // -join without -worker
		{"-heartbeat-interval", "1s"},                    // heartbeat flags need -coordinator
		{"-coordinator", "-heartbeat-interval", "-1s"},   // negative heartbeat cadence
		{"-coordinator", "-heartbeat-timeout", "-1s"},    // negative heartbeat timeout
	}
	for _, args := range cases {
		var out syncWriter
		if err := run(context.Background(), args, &out); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

// TestRunOracleExhaustiveFlagParses pins the -oracle-exhaustive escape
// hatch into the flag set: parsing must get past the flag (and then
// fail on the deliberate positional argument) rather than reject it as
// undefined.
func TestRunOracleExhaustiveFlagParses(t *testing.T) {
	var out syncWriter
	err := run(context.Background(), []string{"-oracle-exhaustive", "positional"}, &out)
	if err == nil || !strings.Contains(err.Error(), "unexpected arguments") {
		t.Fatalf("-oracle-exhaustive not accepted by the flag set: %v", err)
	}
}

// TestRunServeAndGracefulShutdown boots the daemon on an ephemeral port,
// drives a job through the live API, then cancels the context (the
// signal path) and asserts a clean drain.
func TestRunServeAndGracefulShutdown(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var out syncWriter
	done := make(chan error, 1)
	go func() { done <- run(ctx, []string{"-addr", "127.0.0.1:0", "-quick", "-workers", "1"}, &out) }()

	// Wait for the listener line to learn the bound address.
	var base string
	deadline := time.Now().Add(30 * time.Second)
	for base == "" {
		if time.Now().After(deadline) {
			t.Fatalf("daemon never announced its address; output:\n%s", out.String())
		}
		for _, line := range strings.Split(out.String(), "\n") {
			if rest, ok := strings.CutPrefix(line, "vdserved listening on "); ok {
				base = strings.TrimSpace(rest)
			}
		}
		time.Sleep(10 * time.Millisecond)
	}

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || string(body) != "ok\n" {
		t.Fatalf("healthz = %d %q", resp.StatusCode, body)
	}

	resp, err = http.Post(base+"/v1/jobs", "application/json",
		strings.NewReader(`{"experiment":"e1"}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d: %s", resp.StatusCode, body)
	}
	var st struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &st); err != nil || st.ID == "" {
		t.Fatalf("submit body: %v %s", err, body)
	}
	resp, err = http.Get(base + "/v1/jobs/" + st.ID + "/result?wait=60s")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(body) == 0 {
		t.Fatalf("result = %d (%d bytes)", resp.StatusCode, len(body))
	}

	// The signal path: cancel the context and expect a clean drain.
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v; output:\n%s", err, out.String())
		}
	case <-time.After(60 * time.Second):
		t.Fatalf("daemon did not shut down; output:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "shutting down (draining running campaigns)") {
		t.Fatalf("no graceful-shutdown notice:\n%s", out.String())
	}
}

// waitForListener polls the daemon's output until a line with the given
// prefix announces the bound address.
func waitForListener(t *testing.T, out *syncWriter, prefix string) string {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatalf("no %q line; output:\n%s", prefix, out.String())
		}
		for _, line := range strings.Split(out.String(), "\n") {
			if rest, ok := strings.CutPrefix(line, prefix); ok {
				if i := strings.IndexByte(rest, ' '); i >= 0 {
					rest = rest[:i]
				}
				return strings.TrimSpace(rest)
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestRunDistributedSmoke is the tier-1 end-to-end check of the
// distributed modes: one vdserved coordinator plus two vdserved workers,
// all booted through run() exactly as the CLI would, executing a small
// campaign that must deep-equal the plain in-process run.
func TestRunDistributedSmoke(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var coordOut syncWriter
	done := make(chan error, 3)
	go func() {
		done <- run(ctx, []string{"-coordinator", "-addr", "127.0.0.1:0",
			"-heartbeat-interval", "50ms"}, &coordOut)
	}()
	base := waitForListener(t, &coordOut, "vdserved coordinator listening on ")

	var w1, w2 syncWriter
	go func() { done <- run(ctx, []string{"-worker", "-join", base, "-addr", "127.0.0.1:0"}, &w1) }()
	go func() { done <- run(ctx, []string{"-worker", "-join", base, "-addr", "127.0.0.1:0"}, &w2) }()

	// Readiness flips once the worker has a live registration.
	for _, wout := range []*syncWriter{&w1, &w2} {
		addr := waitForListener(t, wout, "vdserved worker listening on ")
		deadline := time.Now().Add(30 * time.Second)
		for {
			resp, err := http.Get(addr + "/healthz/ready")
			if err == nil {
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					break
				}
			}
			if time.Now().After(deadline) {
				t.Fatalf("worker %s never became ready", addr)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}

	wcfg := workload.Config{Services: 8, TargetPrevalence: 0.5, Seed: 3}
	opts := harness.Options{Seed: 3, Workers: 2}

	corpus, err := workload.Generate(wcfg)
	if err != nil {
		t.Fatal(err)
	}
	tools, err := detectors.StandardSuite()
	if err != nil {
		t.Fatal(err)
	}
	want, err := harness.RunCtx(context.Background(), corpus, tools, opts)
	if err != nil {
		t.Fatal(err)
	}

	client := dist.NewClient(base)
	client.PollWait = 100 * time.Millisecond
	got, err := client.RunCampaign(ctx, dist.CampaignSpec{
		Workload:   wcfg,
		Suite:      "standard",
		Options:    opts,
		ShardCases: 3, // several shards, so both workers get work
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("distributed campaign differs from local run")
	}

	cancel()
	for i := 0; i < 3; i++ {
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("run returned %v", err)
			}
		case <-time.After(60 * time.Second):
			t.Fatalf("processes did not shut down; coordinator output:\n%s", coordOut.String())
		}
	}
}

// TestRunRejectsDataDirInDistModes pins -data-dir to the default mode:
// the durable job store belongs to the experiment job API, not to the
// distributed coordinator or worker roles.
func TestRunRejectsDataDirInDistModes(t *testing.T) {
	for _, args := range [][]string{
		{"-data-dir", t.TempDir(), "-coordinator"},
		{"-data-dir", t.TempDir(), "-worker", "-join", "http://x"},
	} {
		var out syncWriter
		if err := run(context.Background(), args, &out); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

// daemonBaseQuick reconstructs the exact base configuration run() builds
// for "-quick" with default execution flags, so tests can reproduce the
// daemon's campaigns in-process for byte comparison.
func daemonBaseQuick() vdbench.ExperimentConfig {
	cfg := vdbench.QuickExperimentConfig()
	cfg.Workers = 0
	cfg.PerToolTimeout = 0
	cfg.Retry = vdbench.RetryPolicy{}
	cfg.Degraded = vdbench.DegradedAbort
	cfg.Interpreter = false
	cfg.OracleExhaustive = false
	return cfg
}

// TestHelperDaemon is not a test: it is the child process body for the
// kill-and-restart test below, re-executed from the test binary with
// VDSERVED_HELPER=1. It boots the real daemon main loop on an ephemeral
// port with a durable data directory.
func TestHelperDaemon(t *testing.T) {
	if os.Getenv("VDSERVED_HELPER") != "1" {
		t.Skip("helper process body for TestRunKillAndRestartByteIdentical")
	}
	args := []string{"-addr", "127.0.0.1:0", "-quick", "-workers", "1",
		"-data-dir", os.Getenv("VDSERVED_DATA_DIR")}
	if err := run(context.Background(), args, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "helper daemon:", err)
		os.Exit(1)
	}
}

// startDaemonProcess re-executes the test binary as a real vdserved
// process against dir and waits for its listener announcement.
func startDaemonProcess(t *testing.T, dir string) (*exec.Cmd, string, *syncWriter) {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=^TestHelperDaemon$", "-test.v")
	cmd.Env = append(os.Environ(), "VDSERVED_HELPER=1", "VDSERVED_DATA_DIR="+dir)
	var out syncWriter
	cmd.Stdout = &out
	cmd.Stderr = &out
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			_ = cmd.Process.Kill()
			_, _ = cmd.Process.Wait()
		}
	})
	base := waitForListener(t, &out, "vdserved listening on ")
	return cmd, base, &out
}

// TestRunKillAndRestartByteIdentical is the process-level crash
// acceptance test: a real vdserved process is SIGKILLed with a job in
// flight, a successor on the same data directory replays the journal,
// and the recovered job's result is byte-identical to an uninterrupted
// in-process run of the same configuration.
func TestRunKillAndRestartByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	dir := t.TempDir()

	first, base, _ := startDaemonProcess(t, dir)
	resp, err := http.Post(base+"/v1/jobs", "application/json",
		strings.NewReader(`{"experiment":"e1"}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d: %s", resp.StatusCode, body)
	}
	var st struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &st); err != nil || st.ID == "" {
		t.Fatalf("submit body: %v %s", err, body)
	}

	// SIGKILL the daemon with the job submitted (typically mid-campaign:
	// one worker, freshly dequeued). No cleanup runs; whatever made it to
	// the journal is all the successor gets.
	if err := first.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_ = first.Wait() // "signal: killed" — expected

	second, base2, out2 := startDaemonProcess(t, dir)
	if !strings.Contains(out2.String(), "vdserved: recovered") {
		t.Fatalf("successor printed no recovery line:\n%s", out2.String())
	}

	// The job survives under its original ID and completes (replayed from
	// its journaled config, or rehydrated if the blob landed pre-kill).
	resp, err = http.Get(base2 + "/v1/jobs/" + st.ID + "/result?format=text&wait=120s")
	if err != nil {
		t.Fatal(err)
	}
	got, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("recovered result = %d: %s", resp.StatusCode, got)
	}

	direct, err := vdbench.RunExperiment("e1", daemonBaseQuick())
	if err != nil {
		t.Fatal(err)
	}
	want, err := direct.Render("text")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != want {
		t.Fatal("recovered result is not byte-identical to an uninterrupted run")
	}

	// The successor shuts down cleanly on SIGTERM (exit 0 proves the
	// helper's run() returned nil).
	if err := second.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- second.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("successor exit: %v\n%s", err, out2.String())
		}
	case <-time.After(60 * time.Second):
		t.Fatalf("successor did not drain; output:\n%s", out2.String())
	}
}

// TestRunWarmRestartLogsRecovery pins the startup recovery line on the
// graceful path: run a job to completion, shut down cleanly, restart on
// the same data directory, and the successor reports the restored and
// rehydrated job without re-executing it.
func TestRunWarmRestartLogsRecovery(t *testing.T) {
	dir := t.TempDir()

	ctx1, cancel1 := context.WithCancel(context.Background())
	var out1 syncWriter
	done1 := make(chan error, 1)
	go func() {
		done1 <- run(ctx1, []string{"-addr", "127.0.0.1:0", "-quick", "-workers", "1", "-data-dir", dir}, &out1)
	}()
	base := waitForListener(t, &out1, "vdserved listening on ")
	resp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(`{"experiment":"e1"}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var st struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &st); err != nil || st.ID == "" {
		t.Fatalf("submit body: %v %s", err, body)
	}
	if resp, err = http.Get(base + "/v1/jobs/" + st.ID + "/result?wait=120s"); err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first run result = %d", resp.StatusCode)
	}
	cancel1()
	if err := <-done1; err != nil {
		t.Fatalf("first daemon exit: %v\n%s", err, out1.String())
	}

	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	var out2 syncWriter
	done2 := make(chan error, 1)
	go func() {
		done2 <- run(ctx2, []string{"-addr", "127.0.0.1:0", "-quick", "-workers", "1", "-data-dir", dir}, &out2)
	}()
	waitForListener(t, &out2, "vdserved listening on ")
	logLine := ""
	for _, line := range strings.Split(out2.String(), "\n") {
		if strings.HasPrefix(line, "vdserved: recovered") {
			logLine = line
		}
	}
	if logLine == "" {
		t.Fatalf("no recovery line; output:\n%s", out2.String())
	}
	if !strings.Contains(logLine, "1 jobs restored") || !strings.Contains(logLine, "1 results rehydrated") ||
		!strings.Contains(logLine, "0 jobs requeued") {
		t.Fatalf("recovery line does not describe a warm restart: %s", logLine)
	}
	cancel2()
	if err := <-done2; err != nil {
		t.Fatalf("second daemon exit: %v\n%s", err, out2.String())
	}
}
