// Command mcdarank runs multi-criteria decision analysis, either on the
// built-in metric-selection problem (scenario mode) or on a user-supplied
// CSV decision problem (file mode).
//
// Scenario mode ranks the candidate benchmark metrics for one of the
// built-in usage scenarios:
//
//	mcdarank -scenario security-audit
//
// File mode expects a CSV with a header row naming the criteria, one row
// per alternative (first column = name), and weights given on the command
// line:
//
//	mcdarank -file problem.csv -weights 5,3,1 -method topsis
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"github.com/dsn2015/vdbench"
	"github.com/dsn2015/vdbench/internal/core"
	"github.com/dsn2015/vdbench/internal/mcda"
	"github.com/dsn2015/vdbench/internal/scenario"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mcdarank:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("mcdarank", flag.ContinueOnError)
	var (
		scenarioID    = fs.String("scenario", "", "rank metrics for a built-in scenario (dev-triage, security-audit, auto-gating, procurement)")
		file          = fs.String("file", "", "CSV decision problem (header: name,crit1,crit2,...)")
		weightsArg    = fs.String("weights", "", "comma-separated criterion weights for file mode")
		method        = fs.String("method", "ahp", "MCDA method: ahp, wsm, wpm or topsis")
		seed          = fs.Uint64("seed", 1, "seed for the property analysis in scenario mode")
		topK          = fs.Int("top", 10, "how many alternatives to print")
		questionnaire = fs.Bool("questionnaire", false, "emit a blank pairwise-comparison questionnaire over the metric-quality criteria")
		answers       = fs.String("answers", "", "rank metrics from a filled-in questionnaire CSV (a real expert's judgments)")
	)
	fs.SetOutput(out)
	if err := fs.Parse(args); err != nil {
		return err
	}
	modes := 0
	for _, on := range []bool{*scenarioID != "", *file != "", *questionnaire, *answers != ""} {
		if on {
			modes++
		}
	}
	switch {
	case modes > 1:
		return fmt.Errorf("use exactly one of -scenario, -file, -questionnaire or -answers")
	case *questionnaire:
		return emitQuestionnaire(out)
	case *answers != "":
		return runAnswers(out, *answers, *seed, *topK)
	case *scenarioID != "":
		return runScenario(out, *scenarioID, *seed, *topK)
	case *file != "":
		return runFile(out, *file, *weightsArg, *method, *topK)
	default:
		fs.Usage()
		return fmt.Errorf("one of -scenario, -file, -questionnaire or -answers is required")
	}
}

// emitQuestionnaire prints the pairwise-comparison questionnaire a human
// expert fills in: one row per criterion pair, with a blank judgment
// column on the Saaty 1-9 scale (reciprocals for "B more important").
func emitQuestionnaire(out io.Writer) error {
	fmt.Fprintln(out, "# Pairwise importance questionnaire — criteria of a good benchmark metric.")
	fmt.Fprintln(out, "# Fill the judgment column on the Saaty scale:")
	fmt.Fprintln(out, "#   9 = A extremely more important than B ... 1 = equal ... 1/9 = B extremely more important.")
	fmt.Fprintln(out, "# Fractions like 1/5 are accepted. Then run: mcdarank -answers <this file>")
	fmt.Fprintln(out, "criterionA,criterionB,judgment")
	ids := scenario.CriterionIDs()
	for i := 0; i < len(ids); i++ {
		for j := i + 1; j < len(ids); j++ {
			fmt.Fprintf(out, "%s,%s,1\n", ids[i], ids[j])
		}
	}
	return nil
}

// runAnswers builds a judgment matrix from a filled questionnaire, derives
// criteria weights (with consistency diagnostics) and ranks the metric
// catalogue under them.
func runAnswers(out io.Writer, path string, seed uint64, topK int) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	reader := csv.NewReader(f)
	reader.Comment = '#'
	rows, err := reader.ReadAll()
	if err != nil {
		return fmt.Errorf("parse %s: %w", path, err)
	}
	ids := scenario.CriterionIDs()
	index := make(map[string]int, len(ids))
	for i, id := range ids {
		index[id] = i
	}
	pw, err := mcda.NewPairwise(len(ids))
	if err != nil {
		return err
	}
	for rowNum, row := range rows {
		if rowNum == 0 && len(row) == 3 && row[2] == "judgment" {
			continue // header
		}
		if len(row) != 3 {
			return fmt.Errorf("%s: row %d has %d fields, want 3", path, rowNum+1, len(row))
		}
		a, okA := index[strings.TrimSpace(row[0])]
		b, okB := index[strings.TrimSpace(row[1])]
		if !okA || !okB {
			return fmt.Errorf("%s: row %d: unknown criterion %q or %q", path, rowNum+1, row[0], row[1])
		}
		v, err := parseJudgment(row[2])
		if err != nil {
			return fmt.Errorf("%s: row %d: %w", path, rowNum+1, err)
		}
		if err := pw.Set(a, b, v); err != nil {
			return fmt.Errorf("%s: row %d: %w", path, rowNum+1, err)
		}
	}
	prio, err := pw.Priorities()
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "consistency ratio: %.4f (consistent: %t)\n", prio.CR, prio.Consistent())
	if !prio.Consistent() {
		fmt.Fprintln(out, "warning: judgments are inconsistent (CR >= 0.1); consider revisiting them")
	}
	fmt.Fprintln(out, "derived criteria weights:")
	for i, id := range ids {
		fmt.Fprintf(out, "  %-24s %.4f\n", id, prio.Weights[i])
	}
	profiles, err := vdbench.AnalyzeMetrics(vdbench.DefaultPropConfig(), seed)
	if err != nil {
		return err
	}
	problem, err := core.BuildProblem(profiles)
	if err != nil {
		return err
	}
	res, err := mcda.AHP(pw, problem)
	if err != nil {
		return err
	}
	type ranked struct {
		name  string
		score float64
	}
	order := make([]ranked, len(res.Scores))
	for i := range res.Scores {
		order[i] = ranked{problem.Alternatives[i], res.Scores[i]}
	}
	sort.Slice(order, func(i, j int) bool { return order[i].score > order[j].score })
	if topK > len(order) {
		topK = len(order)
	}
	fmt.Fprintln(out, "metric ranking under your judgments:")
	for i := 0; i < topK; i++ {
		fmt.Fprintf(out, "  %2d. %-24s %.4f\n", i+1, order[i].name, order[i].score)
	}
	return nil
}

// parseJudgment accepts Saaty-scale values as decimals ("3", "0.2") or
// fractions ("1/5").
func parseJudgment(s string) (float64, error) {
	s = strings.TrimSpace(s)
	if num, den, ok := strings.Cut(s, "/"); ok {
		n, err1 := strconv.ParseFloat(strings.TrimSpace(num), 64)
		d, err2 := strconv.ParseFloat(strings.TrimSpace(den), 64)
		if err1 != nil || err2 != nil || d == 0 {
			return 0, fmt.Errorf("bad fraction %q", s)
		}
		return n / d, nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad judgment %q", s)
	}
	return v, nil
}

func runScenario(out io.Writer, id string, seed uint64, topK int) error {
	s, ok := vdbench.ScenarioByID(id)
	if !ok {
		var ids []string
		for _, sc := range vdbench.Scenarios() {
			ids = append(ids, sc.ID)
		}
		return fmt.Errorf("unknown scenario %q (known: %s)", id, strings.Join(ids, ", "))
	}
	fmt.Fprintf(out, "scenario: %s — %s\n%s\n\n", s.ID, s.Name, s.Description)
	profiles, err := vdbench.AnalyzeMetrics(vdbench.DefaultPropConfig(), seed)
	if err != nil {
		return err
	}
	sel, err := vdbench.SelectMetric(s, profiles)
	if err != nil {
		return err
	}
	val, err := vdbench.ValidateSelection(s, profiles, 5, 0.1, seed)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "analytical ranking (weighted criteria):\n")
	for i, id := range sel.Top(topK) {
		score, _ := sel.ScoreOf(id)
		fmt.Fprintf(out, "  %2d. %-22s %.4f\n", i+1, id, score)
	}
	fmt.Fprintf(out, "\nAHP validation: CR=%.4f consistent=%t tau-vs-analytical=%.3f top3-overlap=%.2f\n",
		val.AHP.Consistency.CR, val.AHP.Consistency.Consistent(), val.AgreementTau, val.TopAgreement)
	fmt.Fprintf(out, "AHP winner: %s\n", val.Selection.Best())
	return nil
}

func runFile(out io.Writer, path, weightsArg, method string, topK int) error {
	problem, err := loadProblem(path)
	if err != nil {
		return err
	}
	weights, err := parseWeights(weightsArg, len(problem.Criteria))
	if err != nil {
		return err
	}
	var scores []float64
	switch method {
	case "wsm":
		scores, err = mcda.WeightedSum(problem, weights)
	case "wpm":
		scores, err = mcda.WeightedProduct(problem, weights)
	case "topsis":
		scores, err = mcda.TOPSIS(problem, weights)
	case "ahp":
		pw, werr := mcda.FromWeights(weights)
		if werr != nil {
			return werr
		}
		var res mcda.AHPResult
		res, err = mcda.AHP(pw, problem)
		if err == nil {
			scores = res.Scores
			fmt.Fprintf(out, "consistency ratio: %.4f\n", res.Consistency.CR)
		}
	default:
		return fmt.Errorf("unknown method %q (want ahp, wsm or topsis)", method)
	}
	if err != nil {
		return err
	}
	type ranked struct {
		name  string
		score float64
	}
	order := make([]ranked, len(scores))
	for i := range scores {
		order[i] = ranked{problem.Alternatives[i], scores[i]}
	}
	for i := 0; i < len(order); i++ {
		for j := i + 1; j < len(order); j++ {
			if order[j].score > order[i].score {
				order[i], order[j] = order[j], order[i]
			}
		}
	}
	if topK > len(order) {
		topK = len(order)
	}
	for i := 0; i < topK; i++ {
		fmt.Fprintf(out, "%2d. %-24s %.4f\n", i+1, order[i].name, order[i].score)
	}
	return nil
}

// loadProblem reads a CSV decision problem: header "name,crit1,...",
// one row per alternative.
func loadProblem(path string) (mcda.Problem, error) {
	f, err := os.Open(path)
	if err != nil {
		return mcda.Problem{}, err
	}
	defer f.Close()
	rows, err := csv.NewReader(f).ReadAll()
	if err != nil {
		return mcda.Problem{}, fmt.Errorf("parse %s: %w", path, err)
	}
	if len(rows) < 2 || len(rows[0]) < 2 {
		return mcda.Problem{}, fmt.Errorf("%s: need a header and at least one alternative", path)
	}
	p := mcda.Problem{Criteria: rows[0][1:]}
	for i, row := range rows[1:] {
		if len(row) != len(rows[0]) {
			return mcda.Problem{}, fmt.Errorf("%s: row %d has %d fields, want %d", path, i+2, len(row), len(rows[0]))
		}
		p.Alternatives = append(p.Alternatives, row[0])
		vals := make([]float64, len(row)-1)
		for j, cell := range row[1:] {
			v, err := strconv.ParseFloat(strings.TrimSpace(cell), 64)
			if err != nil {
				return mcda.Problem{}, fmt.Errorf("%s: row %d column %d: %w", path, i+2, j+2, err)
			}
			vals[j] = v
		}
		p.Scores = append(p.Scores, vals)
	}
	return p, p.Validate()
}

func parseWeights(arg string, n int) ([]float64, error) {
	if arg == "" {
		// Equal weights by default.
		w := make([]float64, n)
		for i := range w {
			w[i] = 1
		}
		return w, nil
	}
	parts := strings.Split(arg, ",")
	if len(parts) != n {
		return nil, fmt.Errorf("got %d weights for %d criteria", len(parts), n)
	}
	w := make([]float64, n)
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("weight %d: %w", i+1, err)
		}
		w[i] = v
	}
	return w, nil
}
