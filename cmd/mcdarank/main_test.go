package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeProblem(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "problem.csv")
	csv := "name,quality,price,support\n" +
		"alpha,0.9,0.2,0.5\n" +
		"beta,0.5,0.9,0.5\n" +
		"gamma,0.1,0.1,0.5\n"
	if err := os.WriteFile(path, []byte(csv), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestFileModeMethods(t *testing.T) {
	path := writeProblem(t)
	for _, method := range []string{"ahp", "wsm", "topsis"} {
		var out strings.Builder
		if err := run([]string{"-file", path, "-weights", "5,1,1", "-method", method}, &out); err != nil {
			t.Fatalf("%s: %v", method, err)
		}
		lines := strings.Split(strings.TrimSpace(out.String()), "\n")
		last := lines[len(lines)-1]
		// gamma is dominated and must rank last under every method.
		if !strings.Contains(last, "gamma") {
			t.Errorf("%s: dominated alternative not last:\n%s", method, out.String())
		}
		// quality-heavy weights must rank alpha first.
		first := lines[0]
		if method == "ahp" {
			first = lines[1] // line 0 is the consistency ratio
		}
		if !strings.Contains(first, "alpha") {
			t.Errorf("%s: quality-heavy weights should rank alpha first:\n%s", method, out.String())
		}
	}
}

func TestFileModeDefaultsToEqualWeights(t *testing.T) {
	path := writeProblem(t)
	var out strings.Builder
	if err := run([]string{"-file", path, "-method", "wsm"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "alpha") {
		t.Fatal("output missing alternatives")
	}
}

func TestFileModeErrors(t *testing.T) {
	path := writeProblem(t)
	cases := [][]string{
		{}, // no mode
		{"-file", path, "-scenario", "dev-triage"},        // both modes
		{"-file", path, "-weights", "1,2"},                // weight count
		{"-file", path, "-method", "electre"},             // unknown method
		{"-file", filepath.Join(t.TempDir(), "none.csv")}, // missing file
	}
	for _, args := range cases {
		var out strings.Builder
		if err := run(args, &out); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestFileModeMalformedCSV(t *testing.T) {
	dir := t.TempDir()
	for name, content := range map[string]string{
		"short.csv":  "name\n",
		"ragged.csv": "name,a,b\nx,1\n",
		"nonnum.csv": "name,a\nx,hello\n",
	} {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		var out strings.Builder
		if err := run([]string{"-file", path}, &out); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestScenarioModeUnknown(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-scenario", "nope"}, &out); err == nil {
		t.Fatal("unknown scenario accepted")
	}
}

func TestParseWeights(t *testing.T) {
	w, err := parseWeights("", 3)
	if err != nil || len(w) != 3 || w[0] != 1 {
		t.Fatalf("default weights = %v, %v", w, err)
	}
	w, err = parseWeights("1, 2.5 ,3", 3)
	if err != nil || w[1] != 2.5 {
		t.Fatalf("parsed weights = %v, %v", w, err)
	}
	if _, err := parseWeights("1,x,3", 3); err == nil {
		t.Fatal("non-numeric weight accepted")
	}
}

func TestQuestionnaireRoundTrip(t *testing.T) {
	// Emit the questionnaire, fill in audit-leaning judgments, and rank.
	var q strings.Builder
	if err := run([]string{"-questionnaire"}, &q); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(q.String()), "\n")
	var filled strings.Builder
	for _, line := range lines {
		if strings.HasPrefix(line, "#") || strings.HasPrefix(line, "criterionA") {
			filled.WriteString(line + "\n")
			continue
		}
		fields := strings.Split(line, ",")
		// Make prevalence-robustness dominate everything.
		switch {
		case fields[0] == "prevalence-robustness":
			filled.WriteString(fields[0] + "," + fields[1] + ",7\n")
		case fields[1] == "prevalence-robustness":
			filled.WriteString(fields[0] + "," + fields[1] + ",1/7\n")
		default:
			filled.WriteString(line + "\n")
		}
	}
	path := filepath.Join(t.TempDir(), "answers.csv")
	if err := os.WriteFile(path, []byte(filled.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run([]string{"-answers", path, "-top", "5"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "consistent: true") {
		t.Fatalf("uniform-dominance judgments should be consistent:\n%s", got)
	}
	// A prevalence-robustness-dominated expert must rank a prevalence-
	// invariant metric first.
	head := strings.SplitN(got, "metric ranking", 2)[1]
	first := strings.Split(head, "\n")[1]
	okWinner := false
	for _, id := range []string{"informedness", "balanced-accuracy", "recall", "fnr", "g-mean", "specificity", "fpr"} {
		if strings.Contains(first, id) {
			okWinner = true
		}
	}
	if !okWinner {
		t.Fatalf("prevalence-dominated judgments picked an implausible winner: %s", first)
	}
}

func TestAnswersErrors(t *testing.T) {
	dir := t.TempDir()
	for name, content := range map[string]string{
		"badcrit.csv":  "criterionA,criterionB,judgment\nnope,validity,3\n",
		"badjudge.csv": "criterionA,criterionB,judgment\nvalidity,definedness,banana\n",
		"badfrac.csv":  "criterionA,criterionB,judgment\nvalidity,definedness,1/0\n",
		"short.csv":    "criterionA,criterionB\nvalidity,definedness\n",
	} {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		var out strings.Builder
		if err := run([]string{"-answers", path}, &out); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
	var out strings.Builder
	if err := run([]string{"-answers", filepath.Join(dir, "missing.csv")}, &out); err == nil {
		t.Error("missing answers file accepted")
	}
	if err := run([]string{"-questionnaire", "-scenario", "dev-triage"}, &out); err == nil {
		t.Error("multiple modes accepted")
	}
}

func TestParseJudgment(t *testing.T) {
	cases := map[string]float64{"3": 3, "1/5": 0.2, " 1/9 ": 1.0 / 9.0, "0.5": 0.5}
	for in, want := range cases {
		got, err := parseJudgment(in)
		if err != nil || got != want {
			t.Errorf("parseJudgment(%q) = %g, %v", in, got, err)
		}
	}
	for _, bad := range []string{"", "x", "1/x", "1/0"} {
		if _, err := parseJudgment(bad); err == nil {
			t.Errorf("parseJudgment(%q) accepted", bad)
		}
	}
}
