// Command vdlint runs the module's repo-specific static analyzers (see
// internal/vdlint) over the source tree and exits non-zero when any
// analyzer reports a finding. It is part of the tier-1 verification line:
//
//	go vet ./... && go run ./cmd/vdlint -json ./...
//
// Arguments are package patterns for familiarity with go tooling, but the
// analyzers are whole-module checks: any pattern (or none) loads the
// module containing the working directory.
//
// Exit status: 0 clean, 1 findings, 2 load or analysis error.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"github.com/dsn2015/vdbench/internal/vdlint"
)

func main() {
	var (
		only    = flag.String("only", "", "comma-separated analyzers to run (default: all)")
		skip    = flag.String("skip", "", "comma-separated analyzers to skip")
		jsonOut = flag.Bool("json", false, "emit diagnostics as a stable JSON array")
		workers = flag.Int("workers", 0, "parallel type-check/analysis workers (0 = GOMAXPROCS)")
		impMode = flag.String("importer", "auto", "stdlib import resolution: auto, gclist or source")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: vdlint [flags] [./...]\n\nflags:\n")
		flag.PrintDefaults()
		fmt.Fprintf(flag.CommandLine.Output(), "\nanalyzers:\n")
		for _, a := range vdlint.All() {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-13s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "vdlint:", err)
		os.Exit(2)
	}
	root, err := moduleRoot(".")
	if err != nil {
		fail(err)
	}
	prog, err := vdlint.LoadWith(root, vdlint.LoadOptions{Importer: *impMode})
	if err != nil {
		fail(err)
	}
	diags, err := vdlint.Run(prog, vdlint.All(), vdlint.Options{
		Workers: *workers,
		Only:    splitList(*only),
		Skip:    splitList(*skip),
	})
	if err != nil {
		fail(err)
	}
	if *jsonOut {
		if err := vdlint.WriteJSON(os.Stdout, diags); err != nil {
			fail(err)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

// splitList parses a comma-separated flag value, dropping empty entries.
func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// moduleRoot walks up from dir to the nearest directory holding go.mod.
func moduleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(abs, "go.mod")); err == nil {
			return abs, nil
		}
		parent := filepath.Dir(abs)
		if parent == abs {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		abs = parent
	}
}
