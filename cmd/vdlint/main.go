// Command vdlint runs the module's repo-specific static analyzers (see
// internal/vdlint) over the source tree and exits non-zero when any
// analyzer reports a finding. It is part of the tier-1 verification line:
//
//	go vet ./... && go run ./cmd/vdlint ./...
//
// Arguments are package patterns for familiarity with go tooling, but the
// analyzers are whole-module checks: any pattern (or none) loads the
// module containing the working directory.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"github.com/dsn2015/vdbench/internal/vdlint"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: vdlint [./...]\n\nanalyzers:\n")
		for _, a := range vdlint.All() {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-12s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()

	root, err := moduleRoot(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "vdlint:", err)
		os.Exit(2)
	}
	prog, err := vdlint.Load(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vdlint:", err)
		os.Exit(2)
	}
	diags := vdlint.Run(prog, vdlint.All())
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

// moduleRoot walks up from dir to the nearest directory holding go.mod.
func moduleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(abs, "go.mod")); err == nil {
			return abs, nil
		}
		parent := filepath.Dir(abs)
		if parent == abs {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		abs = parent
	}
}
